// Edge-case coverage across modules: unusual shapes, parser corner
// cases, boundary thread counts, and order extremes.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/options.hpp"
#include "cpd/completion.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "la/eigen.hpp"
#include "mttkrp/mttkrp.hpp"
#include "sort/sort.hpp"
#include "tensor/dense.hpp"
#include "tensor/io.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

// -------------------------------------------------------------------- io

TEST(IoEdge, ScientificNotationValues) {
  std::istringstream in("1 1 1 1.5e3\n2 2 2 -2E-2\n");
  const SparseTensor t = read_tns(in);
  EXPECT_DOUBLE_EQ(t.vals()[0], 1500.0);
  EXPECT_DOUBLE_EQ(t.vals()[1], -0.02);
}

TEST(IoEdge, CrlfLineEndings) {
  std::istringstream in("1 1 2.0\r\n2 2 3.0\r\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_DOUBLE_EQ(t.vals()[1], 3.0);
}

TEST(IoEdge, TabsAndExtraWhitespace) {
  std::istringstream in("  1\t1 \t 1   4.0  \n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.nnz(), 1u);
  EXPECT_DOUBLE_EQ(t.vals()[0], 4.0);
}

TEST(IoEdge, SingleModeTensor) {
  std::istringstream in("3 1.0\n7 2.0\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 1);
  EXPECT_EQ(t.dim(0), 7u);
}

TEST(IoEdge, ZeroValueEntriesKept) {
  // FROSTT files may carry explicit zeros; they are stored, not dropped.
  std::istringstream in("1 1 0.0\n2 2 1.0\n");
  const SparseTensor t = read_tns(in);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_EQ(t.vals()[0], 0.0);
}

// --------------------------------------------------------------- options

TEST(OptionsEdge, FlagEqualsFalse) {
  Options o("prog", "test");
  o.add_flag("verbose", "v");
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(o.parse(2, argv));
  EXPECT_FALSE(o.get_bool("verbose"));
}

TEST(OptionsEdge, NegativeNumbersAsValues) {
  Options o("prog", "test");
  o.add("offset", "0", "signed value");
  const char* argv[] = {"prog", "--offset", "-5"};
  ASSERT_TRUE(o.parse(3, argv));
  EXPECT_EQ(o.get_int("offset"), -5);
}

TEST(OptionsEdge, LastValueWins) {
  Options o("prog", "test");
  o.add("rank", "1", "rank");
  const char* argv[] = {"prog", "--rank", "2", "--rank", "3"};
  ASSERT_TRUE(o.parse(5, argv));
  EXPECT_EQ(o.get_int("rank"), 3);
}

// ------------------------------------------------------- degenerate dims

TEST(DegenerateShapes, SingleSliceMode) {
  // A mode of length 1 collapses that level of the CSF tree.
  SparseTensor t({1, 20, 30});
  Rng rng(1);
  for (int k = 0; k < 100; ++k) {
    const idx_t c[] = {0, rng.next_index(20), rng.next_index(30)};
    t.push_back(c, 1.0 + rng.next_double());
  }
  const DenseTensor dense = DenseTensor::from_coo(t);
  std::vector<la::Matrix> factors;
  Rng frng(2);
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 4, frng));
  }
  SparseTensor sorted = t;
  const CsfSet set(sorted, CsfPolicy::kTwoMode, 2);
  MttkrpOptions mo;
  mo.nthreads = 2;
  MttkrpWorkspace ws(mo, 4, 3);
  for (int mode = 0; mode < 3; ++mode) {
    la::Matrix out(t.dim(mode), 4);
    mttkrp(set, factors, mode, out, ws);
    la::Matrix expected(t.dim(mode), 4);
    dense.mttkrp(mode, factors, expected);
    EXPECT_LT(out.max_abs_diff(expected), 1e-9) << "mode " << mode;
  }
}

TEST(DegenerateShapes, MoreThreadsThanSlices) {
  SparseTensor t({3, 3, 3});
  Rng rng(3);
  for (idx_t i = 0; i < 3; ++i) {
    for (idx_t j = 0; j < 3; ++j) {
      const idx_t c[] = {i, j, rng.next_index(3)};
      t.push_back(c, 1.0);
    }
  }
  CpalsOptions opts;
  opts.rank = 2;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.nthreads = 16;  // vastly oversubscribed relative to 3 slices
  const CpalsResult r = cp_als(t, opts);
  EXPECT_TRUE(std::isfinite(r.fit_history.back()));
}

TEST(DegenerateShapes, RankLargerThanEveryMode) {
  SparseTensor t = generate_synthetic(
      {.dims = {6, 7, 8}, .nnz = 80, .seed = 4});
  CpalsOptions opts;
  opts.rank = 16;  // > all mode lengths: V is rank-deficient by
                   // construction; regularized solve must cope
  opts.max_iterations = 4;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(t, opts);
  EXPECT_TRUE(std::isfinite(r.fit_history.back()));
}

TEST(DegenerateShapes, OrderTwoCpalsIsMatrixFactorization) {
  SparseTensor t = generate_full_low_rank({20, 15}, 3, 0.0, 5);
  CpalsOptions opts;
  opts.rank = 3;
  opts.max_iterations = 40;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(t, opts);
  EXPECT_GT(r.fit_history.back(), 0.999);
}

TEST(DegenerateShapes, SingleNonzeroDecomposes) {
  SparseTensor t({5, 5, 5});
  const idx_t c[] = {2, 3, 4};
  t.push_back(c, 7.0);
  CpalsOptions opts;
  opts.rank = 1;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(t, opts);
  // A single entry is a rank-1 tensor: perfect fit.
  EXPECT_GT(r.fit_history.back(), 0.9999);
}

TEST(DegenerateShapes, AllValuesEqual) {
  SparseTensor t({10, 10});
  for (idx_t i = 0; i < 10; ++i) {
    for (idx_t j = 0; j < 10; ++j) {
      const idx_t c[] = {i, j};
      t.push_back(c, 2.5);
    }
  }
  CpalsOptions opts;
  opts.rank = 1;
  opts.max_iterations = 10;
  opts.tolerance = 0.0;
  const CpalsResult r = cp_als(t, opts);
  // Constant matrix is exactly rank 1.
  EXPECT_GT(r.fit_history.back(), 0.9999);
}

// --------------------------------------------------------------- sorting

TEST(SortEdge, AllNonzerosInOneSlice) {
  SparseTensor t({10, 50, 50});
  Rng rng(6);
  for (int k = 0; k < 1000; ++k) {
    const idx_t c[] = {7, rng.next_index(50), rng.next_index(50)};
    t.push_back(c, 1.0);
  }
  sort_tensor(t, 0, 4);
  EXPECT_TRUE(is_sorted(t, 0));
}

TEST(SortEdge, ReverseSortedInput) {
  SparseTensor t({100, 2});
  for (idx_t i = 100; i-- > 0;) {
    const idx_t c[] = {i, i % 2};
    t.push_back(c, static_cast<val_t>(i));
  }
  sort_tensor(t, 0, 2);
  EXPECT_TRUE(is_sorted(t, 0));
  EXPECT_EQ(t.ind(0)[0], 0u);
  EXPECT_EQ(t.vals()[0], 0.0);
}

// ------------------------------------------------------------ completion

TEST(CompletionEdge, HigherOrderTensor) {
  const SparseTensor full =
      generate_low_rank({10, 9, 8, 7}, 2, 1200, 0.0, 7);
  const auto [train, test] = split_train_test(full, 0.2, 8);
  CompletionOptions opts;
  opts.rank = 2;
  opts.max_iterations = 15;
  opts.regularization = 1e-3;
  opts.tolerance = 0.0;
  opts.nthreads = 2;
  const CompletionResult r = complete_tensor(train, &test, opts);
  EXPECT_LT(r.val_rmse.back(), 0.1);
}

// ----------------------------------------------------------------- eigen

TEST(EigenEdge, OneByOne) {
  la::Matrix a(1, 1);
  a(0, 0) = 4.0;
  std::vector<val_t> evals(1);
  la::Matrix evecs(1, 1);
  la::symmetric_eigen(a, evals, evecs);
  EXPECT_DOUBLE_EQ(evals[0], 4.0);
  EXPECT_DOUBLE_EQ(evecs(0, 0), 1.0);
}

TEST(EigenEdge, RepeatedEigenvalues) {
  // 2*I has eigenvalue 2 twice; any orthonormal basis is valid.
  la::Matrix a = la::Matrix::identity(4);
  for (idx_t i = 0; i < 4; ++i) {
    a(i, i) = 2.0;
  }
  std::vector<val_t> evals(4);
  la::Matrix evecs(4, 4);
  la::symmetric_eigen(a, evals, evecs);
  for (const val_t e : evals) {
    EXPECT_NEAR(e, 2.0, 1e-12);
  }
}

TEST(EigenEdge, ZeroMatrix) {
  la::Matrix a(3, 3, 0.0);
  std::vector<val_t> evals(3);
  la::Matrix evecs(3, 3);
  la::symmetric_eigen(a, evals, evecs);
  for (const val_t e : evals) {
    EXPECT_EQ(e, 0.0);
  }
}

// ----------------------------------------------------------- csf corner

TEST(CsfEdge, EveryNonzeroItsOwnFiber) {
  // Diagonal tensor: no prefix sharing at all.
  SparseTensor t({20, 20, 20});
  for (idx_t i = 0; i < 20; ++i) {
    const idx_t c[] = {i, i, i};
    t.push_back(c, static_cast<val_t>(i + 1));
  }
  const auto order = csf_mode_order(t.dims(), 0);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.nfibers(0), 20u);
  EXPECT_EQ(csf.nfibers(1), 20u);
  EXPECT_EQ(csf.nnz(), 20u);
  const SparseTensor back = csf.to_coo();
  EXPECT_EQ(back.nnz(), 20u);
}

TEST(CsfEdge, FullyDenseTensor) {
  SparseTensor t({4, 4, 4});
  for (idx_t i = 0; i < 4; ++i) {
    for (idx_t j = 0; j < 4; ++j) {
      for (idx_t k = 0; k < 4; ++k) {
        const idx_t c[] = {i, j, k};
        t.push_back(c, 1.0);
      }
    }
  }
  const auto order = csf_mode_order(t.dims(), 0);
  sort_tensor_perm(t, order, 1);
  const CsfTensor csf(t, order);
  EXPECT_EQ(csf.nfibers(0), 4u);
  EXPECT_EQ(csf.nfibers(1), 16u);
  EXPECT_EQ(csf.nnz(), 64u);
}

}  // namespace
}  // namespace sptd
