// Backend equivalence suite: the same regions, schedules, and kernels
// must produce the same numbers whether the team underneath is libgomp
// (`--backend omp`) or the persistent std::thread pool (`--backend
// pool`).
//
// What "same" means depends on whether the computation is
// order-deterministic:
//  * Single-thread runs and multi-thread privatized runs under the
//    static/weighted schedules are bitwise identical across backends:
//    every thread processes a fixed slice range in a fixed order and the
//    reduction sums per-thread buffers in fixed index order.
//  * Multi-thread runs under locks or under the dynamic/workstealing
//    schedules are timing-order nondeterministic even on one backend
//    (deposit interleaving / chunk ownership varies run to run), so
//    those compare at 1e-12 — the same tolerance test_mttkrp uses for
//    omp-vs-omp schedule equivalences.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cpd/cpals.hpp"
#include "csf/csf.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/plan.hpp"
#include "parallel/backend.hpp"
#include "parallel/locks.hpp"
#include "parallel/team.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

/// Restores the process-wide backend selection on scope exit, so a
/// failing test cannot leak `pool` into unrelated tests.
class BackendGuard {
 public:
  BackendGuard() : prior_(parallel_backend()) {}
  ~BackendGuard() { set_parallel_backend(prior_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  ParallelBackendKind prior_;
};

SparseTensor make_tensor(dims_t dims, nnz_t nnz, std::uint64_t seed) {
  return generate_synthetic(
      {.dims = dims, .nnz = nnz, .seed = seed, .zipf_exponent = 0.6});
}

std::vector<la::Matrix> make_factors(const SparseTensor& t, idx_t rank,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < t.order(); ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), rank, rng));
  }
  return factors;
}

// ------------------------------------------------------------ selection

TEST(BackendParse, RoundTrips) {
  EXPECT_EQ(parse_parallel_backend("omp"), ParallelBackendKind::kOmp);
  EXPECT_EQ(parse_parallel_backend("pool"), ParallelBackendKind::kPool);
  EXPECT_STREQ(parallel_backend_name(ParallelBackendKind::kOmp), "omp");
  EXPECT_STREQ(parallel_backend_name(ParallelBackendKind::kPool), "pool");
  EXPECT_THROW(parse_parallel_backend("tbb"), Error);
  EXPECT_THROW(parse_parallel_backend(""), Error);
}

TEST(BackendSelect, SetAndQuery) {
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  EXPECT_EQ(parallel_backend(), ParallelBackendKind::kPool);
  set_parallel_backend(ParallelBackendKind::kOmp);
  EXPECT_EQ(parallel_backend(), ParallelBackendKind::kOmp);
}

TEST(BackendSelect, MaxThreadsAgreesAcrossBackends) {
  // Both backends answer the team-size default with the same OpenMP
  // query, so thread sweeps mean the same thing under either.
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kOmp);
  const int omp_threads = hardware_threads();
  set_parallel_backend(ParallelBackendKind::kPool);
  EXPECT_EQ(hardware_threads(), omp_threads);
}

// ---------------------------------------------------------- team shape

TEST(PoolBackend, ExactTeamSizeEveryTidExactlyOnce) {
  // 8 team slots on however many workers the box has (possibly 1): each
  // tid must run exactly once and observe the full team size.
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  constexpr int kTeam = 8;
  std::array<std::atomic<int>, kTeam> hits{};
  std::atomic<int> bad_nt{0};
  parallel_region(kTeam, [&](int tid, int nt) {
    if (nt != kTeam) bad_nt.fetch_add(1);
    hits[static_cast<std::size_t>(tid)].fetch_add(1);
  });
  EXPECT_EQ(bad_nt.load(), 0);
  for (int t = 0; t < kTeam; ++t) {
    EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1) << "tid " << t;
  }
}

TEST(PoolBackend, CurrentThreadIdMatchesTid) {
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  std::atomic<int> mismatches{0};
  parallel_region(4, [&](int tid, int) {
    if (current_thread_id() != tid) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(PoolBackend, RepeatedRegionsReuseWorkers) {
  // Fork/join cadence: many short regions in a row, exercising both the
  // workers' spin path and (with the gaps) the parking path.
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    parallel_region(4, [&](int tid, int) { sum.fetch_add(tid + 1); });
    ASSERT_EQ(sum.load(), 10) << "round " << round;
  }
}

TEST(BackendNesting, InnerRegionSerializesOnBothBackends) {
  // Matches omp_set_max_active_levels(1): a parallel_region entered from
  // inside a multi-thread region runs its body as a team of one, and
  // current_thread_id() inside the inner body reports tid 0.
  for (const auto kind :
       {ParallelBackendKind::kOmp, ParallelBackendKind::kPool}) {
    BackendGuard guard;
    set_parallel_backend(kind);
    std::atomic<int> inner_runs{0};
    std::atomic<int> bad_inner{0};
    parallel_region(2, [&](int, int) {
      parallel_region(4, [&](int tid, int nt) {
        inner_runs.fetch_add(1);
        if (tid != 0 || nt != 1 || current_thread_id() != 0) {
          bad_inner.fetch_add(1);
        }
      });
    });
    EXPECT_EQ(inner_runs.load(), 2) << parallel_backend_name(kind);
    EXPECT_EQ(bad_inner.load(), 0) << parallel_backend_name(kind);
  }
}

TEST(BackendNesting, SingleThreadInlineIsNotARegion) {
  // parallel_region(1) takes the inline shortcut on every backend — it
  // is not a parallel region, so a region launched from inside it gets
  // its full team (matching OpenMP, where the shortcut never enters
  // libgomp and the inner region runs at nesting level 0).
  for (const auto kind :
       {ParallelBackendKind::kOmp, ParallelBackendKind::kPool}) {
    BackendGuard guard;
    set_parallel_backend(kind);
    std::atomic<int> inner_team{0};
    parallel_region(1, [&](int, int) {
      parallel_region(3, [&](int, int nt) { inner_team.store(nt); });
    });
    EXPECT_EQ(inner_team.load(), 3) << parallel_backend_name(kind);
  }
}

// ----------------------------------------------------------- lock pools

TEST(BackendLockPool, MutualExclusionUnderPoolBackend) {
  // LockKind::kOmp resolves to BackendLock; under the pool backend that
  // is the FutexLock flavor. Hammer one AnyMutexPool from a pool-backend
  // team and check the plain counters survived.
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  AnyMutexPool pool(LockKind::kOmp);
  constexpr int kSlots = 8;
  constexpr int kIters = 2000;
  constexpr int kTeam = 4;
  std::array<long, kSlots> counters{};
  parallel_region(kTeam, [&](int tid, int) {
    for (int i = 0; i < kIters; ++i) {
      const idx_t slot = static_cast<idx_t>((i + tid) % kSlots);
      pool.lock(slot);
      counters[static_cast<std::size_t>(slot)] += 1;
      pool.unlock(slot);
    }
  });
  long total = 0;
  for (const long c : counters) total += c;
  EXPECT_EQ(total, static_cast<long>(kTeam) * kIters);
}

TEST(BackendLockPool, FutexLockIsMutualExclusive) {
  BackendGuard guard;
  set_parallel_backend(ParallelBackendKind::kPool);
  FutexLock lock;
  long counter = 0;
  parallel_region(4, [&](int, int) {
    for (int i = 0; i < 5000; ++i) {
      lock.lock();
      counter += 1;
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, 4L * 5000L);
}

// ------------------------------------------------- MTTKRP equivalence

la::Matrix run_mttkrp(const CsfSet& set, const std::vector<la::Matrix>& f,
                      idx_t rank, int mode, const MttkrpOptions& opts) {
  MttkrpPlan plan(set, rank, opts);
  la::Matrix out(set.csfs().front().dims()[static_cast<std::size_t>(mode)],
                 rank);
  plan.execute(f, mode, out);
  return out;
}

struct SyncConfig {
  const char* name;
  bool force_locks;
  double privatization_threshold;
};

constexpr SyncConfig kSyncConfigs[] = {
    // Force the locked deposits (BackendLock under kOmp).
    {"locks", true, 0.0},
    // Force privatized per-thread buffers + deterministic reduction.
    {"privatize", false, 1e9},
};

constexpr SchedulePolicy kPolicies[] = {
    SchedulePolicy::kStatic, SchedulePolicy::kWeighted,
    SchedulePolicy::kDynamic, SchedulePolicy::kWorkStealing};

class BackendMttkrpTest : public ::testing::Test {
 protected:
  static MttkrpOptions base_options(int nthreads, SchedulePolicy policy,
                                    const SyncConfig& sync) {
    MttkrpOptions opts;
    opts.nthreads = nthreads;
    opts.schedule = policy;
    opts.force_locks = sync.force_locks;
    opts.privatization_threshold = sync.privatization_threshold;
    return opts;
  }
};

TEST_F(BackendMttkrpTest, SingleThreadBitwiseAcrossBackends) {
  BackendGuard guard;
  for (const idx_t rank : {idx_t{8}, idx_t{35}}) {
    const SparseTensor base = make_tensor({50, 90, 130}, 4000, 7 + rank);
    SparseTensor work = base;
    const CsfSet set(work, CsfPolicy::kTwoMode, 1);
    const auto factors = make_factors(base, rank, 11);
    for (const SchedulePolicy policy : kPolicies) {
      for (const SyncConfig& sync : kSyncConfigs) {
        MttkrpOptions opts = base_options(1, policy, sync);
        for (int mode = 0; mode < base.order(); ++mode) {
          opts.backend = ParallelBackendKind::kOmp;
          const la::Matrix omp_out =
              run_mttkrp(set, factors, rank, mode, opts);
          opts.backend = ParallelBackendKind::kPool;
          const la::Matrix pool_out =
              run_mttkrp(set, factors, rank, mode, opts);
          EXPECT_EQ(omp_out.max_abs_diff(pool_out), 0.0)
              << "rank " << rank << " mode " << mode << " "
              << schedule_policy_name(policy) << " " << sync.name;
        }
      }
    }
  }
}

TEST_F(BackendMttkrpTest, StaticSchedulesPrivatizedBitwiseAtFourThreads) {
  // Fixed per-thread slice ranges + fixed-order reduction: bitwise
  // across backends even multi-threaded.
  BackendGuard guard;
  for (const idx_t rank : {idx_t{8}, idx_t{35}}) {
    const SparseTensor base = make_tensor({50, 90, 130}, 4000, 19 + rank);
    SparseTensor work = base;
    const CsfSet set(work, CsfPolicy::kTwoMode, 4);
    const auto factors = make_factors(base, rank, 13);
    for (const SchedulePolicy policy :
         {SchedulePolicy::kStatic, SchedulePolicy::kWeighted}) {
      MttkrpOptions opts = base_options(4, policy, kSyncConfigs[1]);
      for (int mode = 0; mode < base.order(); ++mode) {
        opts.backend = ParallelBackendKind::kOmp;
        const la::Matrix omp_out =
            run_mttkrp(set, factors, rank, mode, opts);
        opts.backend = ParallelBackendKind::kPool;
        const la::Matrix pool_out =
            run_mttkrp(set, factors, rank, mode, opts);
        EXPECT_EQ(omp_out.max_abs_diff(pool_out), 0.0)
            << "rank " << rank << " mode " << mode << " "
            << schedule_policy_name(policy);
      }
    }
  }
}

TEST_F(BackendMttkrpTest, AllPoliciesAndSyncsMatchAtFourThreads) {
  // The timing-order-nondeterministic configurations (locks; dynamic /
  // workstealing ownership) compare at the cross-schedule tolerance.
  BackendGuard guard;
  for (const idx_t rank : {idx_t{8}, idx_t{35}}) {
    const SparseTensor base = make_tensor({50, 90, 130}, 4000, 29 + rank);
    SparseTensor work = base;
    const CsfSet set(work, CsfPolicy::kTwoMode, 4);
    const auto factors = make_factors(base, rank, 17);
    for (const SchedulePolicy policy : kPolicies) {
      for (const SyncConfig& sync : kSyncConfigs) {
        MttkrpOptions opts = base_options(4, policy, sync);
        for (int mode = 0; mode < base.order(); ++mode) {
          opts.backend = ParallelBackendKind::kOmp;
          const la::Matrix omp_out =
              run_mttkrp(set, factors, rank, mode, opts);
          opts.backend = ParallelBackendKind::kPool;
          const la::Matrix pool_out =
              run_mttkrp(set, factors, rank, mode, opts);
          EXPECT_LT(omp_out.max_abs_diff(pool_out), 1e-12)
              << "rank " << rank << " mode " << mode << " "
              << schedule_policy_name(policy) << " " << sync.name;
        }
      }
    }
  }
}

// ------------------------------------------------- CP-ALS equivalence

TEST(BackendCpals, PrivatizedRunBitwiseAcrossBackends) {
  // Weighted schedule + forced privatization keeps every iteration
  // order-deterministic, so the full solver — MTTKRP, Grams, solves,
  // normalization, fit — must agree bitwise at a fixed team size.
  BackendGuard guard;
  const SparseTensor base = make_tensor({40, 80, 120}, 3000, 41);
  CpalsOptions opts;
  opts.rank = 8;
  opts.max_iterations = 5;
  opts.tolerance = 0.0;
  opts.nthreads = 4;
  opts.schedule = SchedulePolicy::kWeighted;
  opts.privatization_threshold = 1e9;  // force privatize at every mode

  SparseTensor t_omp = base;
  opts.backend = ParallelBackendKind::kOmp;
  const CpalsResult r_omp = cp_als(t_omp, opts);

  SparseTensor t_pool = base;
  opts.backend = ParallelBackendKind::kPool;
  const CpalsResult r_pool = cp_als(t_pool, opts);

  ASSERT_EQ(r_omp.fit_history.size(), r_pool.fit_history.size());
  for (std::size_t i = 0; i < r_omp.fit_history.size(); ++i) {
    EXPECT_EQ(r_omp.fit_history[i], r_pool.fit_history[i]) << "iter " << i;
  }
  for (int m = 0; m < base.order(); ++m) {
    EXPECT_EQ(r_omp.model.factors[static_cast<std::size_t>(m)].max_abs_diff(
                  r_pool.model.factors[static_cast<std::size_t>(m)]),
              0.0)
        << "factor " << m;
  }
  for (std::size_t i = 0; i < r_omp.model.lambda.size(); ++i) {
    EXPECT_EQ(r_omp.model.lambda[i], r_pool.model.lambda[i]);
  }
}

TEST(BackendCpals, LockedRunMatchesAcrossBackends) {
  // Locked deposits are timing-order nondeterministic; the solver-level
  // agreement bound matches the schedule-equivalence tolerance.
  BackendGuard guard;
  const SparseTensor base = make_tensor({40, 80, 120}, 3000, 43);
  CpalsOptions opts;
  opts.rank = 8;
  opts.max_iterations = 3;
  opts.tolerance = 0.0;
  opts.nthreads = 4;
  opts.schedule = SchedulePolicy::kWeighted;
  opts.force_locks = true;

  SparseTensor t_omp = base;
  opts.backend = ParallelBackendKind::kOmp;
  const CpalsResult r_omp = cp_als(t_omp, opts);

  SparseTensor t_pool = base;
  opts.backend = ParallelBackendKind::kPool;
  const CpalsResult r_pool = cp_als(t_pool, opts);

  ASSERT_EQ(r_omp.fit_history.size(), r_pool.fit_history.size());
  for (std::size_t i = 0; i < r_omp.fit_history.size(); ++i) {
    EXPECT_NEAR(r_omp.fit_history[i], r_pool.fit_history[i], 1e-9)
        << "iter " << i;
  }
}

}  // namespace
}  // namespace sptd
