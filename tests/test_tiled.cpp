// Tests for src/mttkrp/tiled: tile structure invariants and lock-free
// MTTKRP correctness against the dense oracle.

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/tiled.hpp"
#include "tensor/dense.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

TEST(TiledTensor, TilesPartitionNonzeros) {
  const SparseTensor t = generate_synthetic(
      {.dims = {50, 40, 30}, .nnz = 4000, .seed = 4000});
  const TiledTensor tiled(t, 0, 4);
  nnz_t covered = 0;
  nnz_t prev_end = 0;
  for (int tile = 0; tile < 4; ++tile) {
    const auto [lo, hi] = tiled.tile_extent(tile);
    EXPECT_EQ(lo, prev_end);
    prev_end = hi;
    covered += hi - lo;
  }
  EXPECT_EQ(covered, t.nnz());
}

TEST(TiledTensor, EveryNonzeroInsideItsTileRowRange) {
  const SparseTensor t = generate_synthetic(
      {.dims = {64, 32, 32}, .nnz = 3000, .seed = 4001,
       .zipf_exponent = 0.8});
  const TiledTensor tiled(t, 0, 4);
  const auto& bounds = tiled.row_bounds();
  for (int tile = 0; tile < 4; ++tile) {
    const auto [lo, hi] = tiled.tile_extent(tile);
    for (nnz_t x = lo; x < hi; ++x) {
      const idx_t row = tiled.tensor().ind(0)[x];
      EXPECT_GE(row, bounds[static_cast<std::size_t>(tile)]);
      EXPECT_LT(row, bounds[static_cast<std::size_t>(tile) + 1]);
    }
  }
}

TEST(TiledTensor, WeightBalancedOnSkewedData) {
  // With heavy slice skew, equal-row tiling would put almost everything
  // in one tile; weighted tiling must keep the largest tile bounded.
  const SparseTensor t = generate_synthetic(
      {.dims = {1000, 50, 50}, .nnz = 20000, .seed = 4002,
       .zipf_exponent = 1.0});
  const TiledTensor tiled(t, 0, 4);
  nnz_t largest = 0;
  for (int tile = 0; tile < 4; ++tile) {
    const auto [lo, hi] = tiled.tile_extent(tile);
    largest = std::max(largest, hi - lo);
  }
  // A single slice can exceed the ideal share; allow 2x plus the heaviest
  // slice, but reject catastrophic imbalance.
  EXPECT_LT(largest, t.nnz());
  EXPECT_GT(largest, 0u);
}

TEST(TiledTensor, PreservesEntries) {
  const SparseTensor t = generate_synthetic(
      {.dims = {20, 20, 20}, .nnz = 1500, .seed = 4003});
  const TiledTensor tiled(t, 1, 3);
  // Values multiset preserved: compare sums and sum of squares.
  val_t sum_orig = 0, sum_tiled = 0;
  for (const val_t v : t.vals()) sum_orig += v;
  for (const val_t v : tiled.tensor().vals()) sum_tiled += v;
  EXPECT_NEAR(sum_orig, sum_tiled, 1e-9);
  EXPECT_NEAR(t.norm_sq(), tiled.tensor().norm_sq(), 1e-9);
}

TEST(TiledTensor, RejectsBadArguments) {
  const SparseTensor t = generate_synthetic(
      {.dims = {10, 10}, .nnz = 25, .seed = 4004});
  EXPECT_THROW(TiledTensor(t, 2, 2), Error);
  EXPECT_THROW(TiledTensor(t, 0, 0), Error);
}

class TiledMttkrpTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TiledMttkrpTest, MatchesDenseOracle) {
  const auto [mode, ntiles] = GetParam();
  const SparseTensor t = generate_synthetic(
      {.dims = {14, 11, 9}, .nnz = 350, .seed = 4005,
       .zipf_exponent = 0.5});
  const DenseTensor dense = DenseTensor::from_coo(t);
  Rng rng(5);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 6, rng));
  }
  la::Matrix expected(t.dim(mode), 6);
  dense.mttkrp(mode, factors, expected);

  const TiledTensor tiled(t, mode, ntiles);
  la::Matrix out(t.dim(mode), 6);
  mttkrp_tiled(tiled, factors, out);
  EXPECT_LT(out.max_abs_diff(expected), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ModesTiles, TiledMttkrpTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(TiledTensor, RuntimePoliciesCoerceToWeightedAndReportIt) {
  SparseTensor t = generate_synthetic({.dims = {100, 40, 30}, .nnz = 2000,
                                       .seed = 77});
  const TiledTensor weighted(t, 0, 4, SchedulePolicy::kWeighted);
  EXPECT_EQ(weighted.effective_policy(), SchedulePolicy::kWeighted);
  const TiledTensor uniform(t, 0, 4, SchedulePolicy::kStatic);
  EXPECT_EQ(uniform.effective_policy(), SchedulePolicy::kStatic);
  // Tiling is fixed ownership: the runtime policies coerce to weighted
  // (with a one-time warning) and the getter reports what actually ran.
  const TiledTensor dynamic(t, 0, 4, SchedulePolicy::kDynamic);
  EXPECT_EQ(dynamic.effective_policy(), SchedulePolicy::kWeighted);
  const TiledTensor stealing(t, 0, 4, SchedulePolicy::kWorkStealing);
  EXPECT_EQ(stealing.effective_policy(), SchedulePolicy::kWeighted);
  // The coerced structure matches the weighted one exactly.
  EXPECT_EQ(dynamic.row_bounds(), weighted.row_bounds());
}

TEST(TiledMttkrp, AgreesWithCooMttkrp) {
  const SparseTensor t = generate_synthetic(
      {.dims = {60, 50, 40}, .nnz = 6000, .seed = 4006,
       .zipf_exponent = 0.7});
  Rng rng(6);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 8, rng));
  }
  for (int mode = 0; mode < 3; ++mode) {
    la::Matrix via_coo(t.dim(mode), 8);
    MttkrpOptions mo;
    mo.nthreads = 2;
    mttkrp_coo(t, factors, mode, via_coo, mo);

    const TiledTensor tiled(t, mode, 4);
    la::Matrix via_tiled(t.dim(mode), 8);
    mttkrp_tiled(tiled, factors, via_tiled);
    EXPECT_LT(via_tiled.max_abs_diff(via_coo), 1e-9) << "mode " << mode;
  }
}

TEST(TiledMttkrp, MoreTilesThanRows) {
  const SparseTensor t = generate_synthetic(
      {.dims = {3, 30, 30}, .nnz = 400, .seed = 4007});
  const TiledTensor tiled(t, 0, 8);  // 8 tiles over 3 rows: 5 empty tiles
  Rng rng(7);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), 4, rng));
  }
  const DenseTensor dense = DenseTensor::from_coo(t);
  la::Matrix expected(t.dim(0), 4);
  dense.mttkrp(0, factors, expected);
  la::Matrix out(t.dim(0), 4);
  mttkrp_tiled(tiled, factors, out);
  EXPECT_LT(out.max_abs_diff(expected), 1e-9);
}

}  // namespace
}  // namespace sptd
