// Tests for the rank-specialized SIMD kernel layer (la/kernels.hpp and
// its MTTKRP dispatch): the compile-time-R path must agree with the
// generic runtime-rank path within 1e-12 across ranks (specialized and
// fallback), modes, and sync strategies, and the register-blocked dense
// kernels must match their naive reference loops.

#include <gtest/gtest.h>

#include <vector>

#include "csf/csf.hpp"
#include "la/blas.hpp"
#include "la/kernels.hpp"
#include "mttkrp/mttkrp.hpp"
#include "mttkrp/plan.hpp"
#include "sort/sort.hpp"
#include "tensor/synthetic.hpp"

namespace sptd {
namespace {

constexpr double kTol = 1e-12;

// The rank axis: exact widths {4, 8, 16, 32, 40, 64}, padded-promotion
// ranks {3 -> 8, 35 -> 40 (the paper's default)}, and {17}, whose padded
// width (24) has no instantiation and must take the generic fallback.
const idx_t kRanks[] = {3, 4, 8, 16, 17, 32, 35, 40, 64};

std::vector<la::Matrix> make_factors(const SparseTensor& t, idx_t rank,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < t.order(); ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), rank, rng));
  }
  return factors;
}

// ------------------------------------------------- width selection map

TEST(KernelWidth, DispatchTable) {
  MttkrpOptions opts;  // pointer access, fixed kernels on
  EXPECT_EQ(selected_kernel_width(4, opts), 4u);
  EXPECT_EQ(selected_kernel_width(8, opts), 8u);
  EXPECT_EQ(selected_kernel_width(16, opts), 16u);
  EXPECT_EQ(selected_kernel_width(32, opts), 32u);
  EXPECT_EQ(selected_kernel_width(40, opts), 40u);
  EXPECT_EQ(selected_kernel_width(64, opts), 64u);
  // Ranks whose padded row stride has an instantiation run it over the
  // zero-filled padding lanes; rank 35 is the paper's default.
  EXPECT_EQ(selected_kernel_width(3, opts), 8u);
  EXPECT_EQ(selected_kernel_width(33, opts), 40u);
  EXPECT_EQ(selected_kernel_width(35, opts), 40u);
  // Ranks padding to an uninstantiated width (24, 48) fall back to the
  // generic loops.
  EXPECT_EQ(selected_kernel_width(17, opts), 0u);
  EXPECT_EQ(selected_kernel_width(41, opts), 0u);
  // Disabled or non-pointer access always falls back.
  opts.use_fixed_kernels = false;
  EXPECT_EQ(selected_kernel_width(16, opts), 0u);
  opts.use_fixed_kernels = true;
  opts.row_access = RowAccess::kSlice;
  EXPECT_EQ(selected_kernel_width(16, opts), 0u);
}

TEST(KernelWidth, PaddedColsIsCacheLineMultiple) {
  for (idx_t c = 1; c <= 130; ++c) {
    const idx_t ld = la::kern::padded_cols(c);
    EXPECT_GE(ld, c);
    EXPECT_EQ(ld % la::kern::kValsPerLine, 0u);
    EXPECT_LT(ld - c, la::kern::kValsPerLine);
  }
}

TEST(KernelWidth, PlanFreezesWidth) {
  SparseTensor x = generate_synthetic(
      {.dims = {15, 11, 9}, .nnz = 200, .seed = 5, .zipf_exponent = 0.4});
  const CsfSet set(x, CsfPolicy::kTwoMode, 2);
  MttkrpOptions opts;
  opts.nthreads = 2;
  EXPECT_EQ(MttkrpPlan(set, 16, opts).kernel_width(), 16u);
  EXPECT_EQ(MttkrpPlan(set, 17, opts).kernel_width(), 0u);
  // The paper's default rank rides the padded R=40 instantiation.
  EXPECT_EQ(MttkrpPlan(set, 35, opts).kernel_width(), 40u);
  opts.use_fixed_kernels = false;
  EXPECT_EQ(MttkrpPlan(set, 16, opts).kernel_width(), 0u);
  EXPECT_EQ(MttkrpPlan(set, 35, opts).kernel_width(), 0u);
}

// ------------------------------- specialized vs generic MTTKRP outputs

struct StrategyCase {
  SyncStrategy strategy;
  int nthreads;
};

/// Runs the mode-\p mode MTTKRP over \p csf with the given strategy and
/// kernel width through the pure-execution entry point.
la::Matrix run_exec(const CsfTensor& csf,
                    const std::vector<la::Matrix>& factors, int mode,
                    idx_t rank, const StrategyCase& sc, idx_t kernel_width) {
  MttkrpOptions opts;
  opts.nthreads = sc.nthreads;
  opts.use_fixed_kernels = kernel_width != 0;
  MttkrpWorkspace ws(opts, rank, csf.order());
  const int level = csf.level_of_mode(mode);
  const SliceSchedule slices(SchedulePolicy::kWeighted, csf.nfibers(0),
                             csf.root_nnz_prefix(), sc.nthreads);
  std::vector<nnz_t> tiles;
  if (sc.strategy == SyncStrategy::kTile) {
    tiles = leaf_tile_bounds(csf, sc.nthreads);
  }
  la::Matrix out(csf.dims()[static_cast<std::size_t>(mode)], rank);
  mttkrp_csf_exec(csf, factors, mode, level, sc.strategy, slices, tiles,
                  kernel_width, out, ws);
  return out;
}

TEST(KernelEquivalence, SpecializedMatchesGenericEverywhere) {
  SparseTensor coo = generate_synthetic(
      {.dims = {13, 9, 11}, .nnz = 350, .seed = 300, .zipf_exponent = 0.5});

  for (const idx_t rank : kRanks) {
    const auto factors = make_factors(coo, rank, 77);
    MttkrpOptions probe;
    const idx_t width = selected_kernel_width(rank, probe);

    for (int root = 0; root < 3; ++root) {
      const auto mode_order = csf_mode_order(coo.dims(), root);
      SparseTensor sorted = coo;
      sort_tensor_perm(sorted, mode_order, 2);
      const CsfTensor csf(sorted, mode_order);

      for (int mode = 0; mode < 3; ++mode) {
        const int level = csf.level_of_mode(mode);
        std::vector<StrategyCase> cases = {
            {SyncStrategy::kNone, 1},
            {SyncStrategy::kLock, 4},
            {SyncStrategy::kPrivatize, 4},
        };
        if (level == csf.order() - 1) {
          cases.push_back({SyncStrategy::kTile, 4});
        }
        for (const StrategyCase& sc : cases) {
          const la::Matrix generic =
              run_exec(csf, factors, mode, rank, sc, 0);
          const la::Matrix specialized =
              run_exec(csf, factors, mode, rank, sc, width);
          EXPECT_LT(specialized.max_abs_diff(generic), kTol)
              << "rank " << rank << " width " << width << " root " << root
              << " mode " << mode << " strategy "
              << sync_strategy_name(sc.strategy) << " threads "
              << sc.nthreads;
        }
      }
    }
  }
}

TEST(KernelEquivalence, PlanDispatchMatchesPlanless) {
  // The planned path (which freezes kernel_width) and the planless path
  // must agree for specialized and fallback ranks alike.
  SparseTensor coo = generate_synthetic(
      {.dims = {17, 12, 10}, .nnz = 400, .seed = 9, .zipf_exponent = 0.4});
  for (const idx_t rank : {idx_t{8}, idx_t{17}}) {
    const auto factors = make_factors(coo, rank, 31);
    SparseTensor sorted = coo;
    const CsfSet set(sorted, CsfPolicy::kTwoMode, 2);
    MttkrpOptions opts;
    opts.nthreads = 2;
    MttkrpPlan plan(set, rank, opts);
    MttkrpWorkspace ws(opts, rank, 3);
    for (int mode = 0; mode < 3; ++mode) {
      la::Matrix planned(coo.dim(mode), rank);
      plan.execute(factors, mode, planned);
      la::Matrix planless(coo.dim(mode), rank);
      mttkrp(set, factors, mode, planless, ws);
      EXPECT_LT(planned.max_abs_diff(planless), kTol)
          << "rank " << rank << " mode " << mode;
    }
  }
}

// ------------------------------------- dense kernels vs reference loops

/// Naive O(I R^2) reference for A^T A.
la::Matrix ata_reference(const la::Matrix& a) {
  la::Matrix out(a.cols(), a.cols());
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t j = 0; j < a.cols(); ++j) {
      for (idx_t k = 0; k < a.cols(); ++k) {
        out(j, k) += a(i, j) * a(i, k);
      }
    }
  }
  return out;
}

/// Naive reference for A^T B.
la::Matrix at_b_reference(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix out(a.cols(), b.cols());
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t k = 0; k < a.cols(); ++k) {
      for (idx_t j = 0; j < b.cols(); ++j) {
        out(k, j) += a(i, k) * b(i, j);
      }
    }
  }
  return out;
}

/// Naive reference for A * B.
la::Matrix matmul_reference(const la::Matrix& a, const la::Matrix& b) {
  la::Matrix out(a.rows(), b.cols());
  for (idx_t i = 0; i < a.rows(); ++i) {
    for (idx_t k = 0; k < a.cols(); ++k) {
      for (idx_t j = 0; j < b.cols(); ++j) {
        out(i, j) += a(i, k) * b(k, j);
      }
    }
  }
  return out;
}

TEST(RegisterBlockedDense, AtaMatchesReference) {
  Rng rng(11);
  for (const idx_t rank : kRanks) {
    // Row counts around the 4-row panel boundary exercise the remainder.
    for (const idx_t rows : {idx_t{1}, idx_t{4}, idx_t{7}, idx_t{64},
                             idx_t{103}}) {
      const la::Matrix a = la::Matrix::random(rows, rank, rng);
      la::Matrix out(rank, rank);
      for (const int nthreads : {1, 3}) {
        la::ata(a, out, nthreads);
        EXPECT_LT(out.max_abs_diff(ata_reference(a)), kTol)
            << "rank " << rank << " rows " << rows << " threads "
            << nthreads;
      }
    }
  }
}

TEST(RegisterBlockedDense, MatmulAtBMatchesReference) {
  Rng rng(13);
  for (const idx_t rank : kRanks) {
    for (const idx_t rows : {idx_t{1}, idx_t{5}, idx_t{8}, idx_t{97}}) {
      const la::Matrix a = la::Matrix::random(rows, rank, rng);
      const la::Matrix b = la::Matrix::random(rows, rank + 2, rng);
      la::Matrix out(rank, rank + 2);
      la::matmul_at_b(a, b, out);
      EXPECT_LT(out.max_abs_diff(at_b_reference(a, b)), kTol)
          << "rank " << rank << " rows " << rows;
    }
  }
}

TEST(RegisterBlockedDense, MatmulMatchesReference) {
  Rng rng(17);
  for (const idx_t inner : {idx_t{1}, idx_t{3}, idx_t{4}, idx_t{9},
                            idx_t{33}}) {
    const la::Matrix a = la::Matrix::random(12, inner, rng);
    const la::Matrix b = la::Matrix::random(inner, 7, rng);
    la::Matrix out(12, 7);
    la::matmul(a, b, out);
    EXPECT_LT(out.max_abs_diff(matmul_reference(a, b)), kTol)
        << "inner " << inner;
  }
}

// ----------------------------------------------- primitive-level checks

TEST(Primitives, FixedMatchesGeneric) {
  // One matrix per operand keeps every row 64-byte aligned.
  Rng rng(23);
  const la::Matrix operands = la::Matrix::random(3, 64, rng);
  la::Matrix fixed_dst(1, 64), generic_dst(1, 64);

  const val_t* a = operands.row_ptr(0);
  const val_t* b = operands.row_ptr(1);

  auto check = [&](idx_t r) {
    EXPECT_LT(fixed_dst.max_abs_diff(generic_dst), kTol) << "rank " << r;
  };

  // axpy
  fixed_dst.fill(1.0);
  generic_dst.fill(1.0);
  la::kern::axpy_r<16>(fixed_dst.row_ptr(0), a, 0.37);
  la::kern::axpy(generic_dst.row_ptr(0), a, 0.37, 16);
  check(16);

  // hadamard accumulate
  la::kern::hadamard_accum_r<32>(fixed_dst.row_ptr(0), a, b);
  la::kern::hadamard_accum(generic_dst.row_ptr(0), a, b, 32);
  check(32);

  // scale
  la::kern::scale_r<8>(fixed_dst.row_ptr(0), b, 2.5);
  la::kern::scale(generic_dst.row_ptr(0), b, 2.5, 8);
  check(8);

  // dot
  EXPECT_NEAR(static_cast<double>(la::kern::dot_r<64>(a, b)),
              static_cast<double>(la::kern::dot(a, b, 64)), kTol);
}

}  // namespace
}  // namespace sptd
