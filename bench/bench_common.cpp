#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sptd::bench {

void add_common_flags(Options& cli, const char* default_preset,
                      const char* default_scale, const char* default_iters,
                      const char* default_threads) {
  cli.add("preset", default_preset,
          "dataset preset: yelp|rate-beer|beer-advocate|nell-2|netflix");
  cli.add("scale", default_scale,
          "preset scale (1.0 = the paper's full-size dataset)");
  cli.add("rank", "35", "decomposition rank (paper: 35)");
  cli.add("iters", default_iters,
          "iterations / mode sweeps per measurement (paper: 20)");
  cli.add("trials", "1", "trials to average (paper: 10)");
  cli.add("threads-list", default_threads,
          "thread counts to sweep (paper: 1,2,4,8,16,32)");
  cli.add("seed", "42", "generator seed");
  cli.add("schedule", "weighted",
          "slice scheduling policy: static|weighted|dynamic|workstealing");
  cli.add("chunk", "16",
          "dynamic/workstealing chunk target (claims per thread)");
  cli.add("kernels", "fixed",
          "inner-loop variant: fixed (rank-specialized SIMD) | generic");
  cli.add("csf-layout", "compressed",
          "CSF index widths: compressed (narrowest per level) | wide");
  cli.add("precision", "f64",
          "value-stream precision: f64 | f32 | mixed (fp32 streams, "
          "fp64 accumulation)");
  cli.add("backend", parallel_backend_name(default_parallel_backend()),
          "parallel backend: omp | pool (persistent std::thread workers; "
          "composes across concurrent runs in one process)");
  cli.add("json", "",
          "append one JSON record per measurement to this file");
  cli.add("checkpoint-every", "0",
          "checkpoint the solver every N iterations (0 = off); the "
          "serialization cost rides the JSON records as checkpoint_time");
  cli.add("checkpoint-dir", "",
          "checkpoint directory (defaults to <build>/bench_ckpt when "
          "--checkpoint-every is set)");
}

SchedulePolicy schedule_flag(const Options& cli) {
  return parse_schedule_policy(cli.get_string("schedule"));
}

CsfLayout csf_layout_flag(const Options& cli) {
  return parse_csf_layout(cli.get_string("csf-layout"));
}

Precision precision_flag(const Options& cli) {
  return parse_precision(cli.get_string("precision"));
}

namespace {

bool fixed_kernels_flag(const Options& cli) {
  const std::string k = cli.get_string("kernels");
  if (k == "fixed") return true;
  if (k == "generic") return false;
  throw Error("unknown --kernels value '" + k +
              "' (expected fixed|generic)");
}

}  // namespace

ParallelBackendKind backend_flag(const Options& cli) {
  return parse_parallel_backend(cli.get_string("backend"));
}

int chunk_flag(const Options& cli) {
  const auto chunk = cli.get_int("chunk");
  SPTD_CHECK(chunk >= 1, "--chunk must be >= 1 (claims per thread)");
  return static_cast<int>(chunk);
}

void apply_kernel_flags(const Options& cli, MttkrpOptions& opts) {
  opts.schedule = schedule_flag(cli);
  opts.chunk_target = chunk_flag(cli);
  opts.use_fixed_kernels = fixed_kernels_flag(cli);
  opts.csf_layout = csf_layout_flag(cli);
  opts.precision = precision_flag(cli);
  opts.backend = backend_flag(cli);
  set_parallel_backend(opts.backend);
}

void apply_kernel_flags(const Options& cli, CpalsOptions& opts) {
  opts.schedule = schedule_flag(cli);
  opts.chunk_target = chunk_flag(cli);
  opts.use_fixed_kernels = fixed_kernels_flag(cli);
  opts.csf_layout = csf_layout_flag(cli);
  opts.precision = precision_flag(cli);
  opts.backend = backend_flag(cli);
  set_parallel_backend(opts.backend);
  opts.resilience.checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every"));
  if (opts.resilience.checkpoint_every > 0) {
    opts.resilience.checkpoint_dir = cli.get_string("checkpoint-dir");
    if (opts.resilience.checkpoint_dir.empty()) {
      opts.resilience.checkpoint_dir = "bench_ckpt";
    }
  }
}

void apply_kernel_flags(const Options& cli, DistOptions& opts) {
  opts.schedule = schedule_flag(cli);
  opts.chunk_target = chunk_flag(cli);
  opts.use_fixed_kernels = fixed_kernels_flag(cli);
  opts.csf_layout = csf_layout_flag(cli);
  opts.precision = precision_flag(cli);
  opts.backend = backend_flag(cli);
  set_parallel_backend(opts.backend);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

JsonRecord& JsonRecord::field(const std::string& key,
                              const std::string& value) {
  fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
  return *this;
}

JsonRecord& JsonRecord::field(const std::string& key, const char* value) {
  return field(key, std::string(value));
}

JsonRecord& JsonRecord::field(const std::string& key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonRecord& JsonRecord::field(const std::string& key, std::int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonRecord& JsonRecord::append(const JsonRecord& other) {
  fields_.insert(fields_.end(), other.fields_.begin(), other.fields_.end());
  return *this;
}

bool JsonRecord::has(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return true;
  }
  return false;
}

std::string JsonRecord::to_line() const {
  std::string line = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) line += ",";
    line += "\"" + json_escape(fields_[i].first) + "\":" +
            fields_[i].second;
  }
  line += "}\n";
  return line;
}

void emit_json_record(const Options& cli, const char* bench,
                      JsonRecord record) {
  const std::string path = cli.get_string("json");
  if (path.empty()) {
    return;
  }
  JsonRecord full;
  full.field("bench", bench)
      .field("preset", cli.get_string("preset"))
      .field("scale", cli.get_double("scale"))
      .field("rank", cli.get_int("rank"))
      .field("schedule", cli.get_string("schedule"))
      .field("chunk", cli.get_int("chunk"))
      .field("kernels", cli.get_string("kernels"))
      .field("csf_layout", cli.get_string("csf-layout"))
      // Identity: pool and omp runs of the same config are different
      // executions (different team launch machinery) and must pair with
      // their own baseline rows.
      .field("backend", cli.get_string("backend"))
      // Identity, not a counter: a checkpointed run and a plain run are
      // different configurations and must pair separately, so checkpoint
      // overhead never reads as a perf regression of the plain config.
      .field("checkpoint_every", cli.get_int("checkpoint-every"));
  if (!record.has("precision")) {
    // Precision sweeps (the precision ablation) set a per-record value;
    // everything else records the --precision flag.
    full.field("precision", cli.get_string("precision"));
  }
  if (!record.has("kernel_width")) {
    // The width the flags select under pointer row access; row-access
    // sweeps set a per-record width instead.
    MttkrpOptions probe;
    apply_kernel_flags(cli, probe);
    full.field("kernel_width",
               static_cast<std::int64_t>(selected_kernel_width(
                   static_cast<idx_t>(cli.get_int("rank")), probe)));
  }
  if (!record.has("steals")) {
    // Work-steal claims since the previous emitted record — i.e. the
    // measurement just taken, warm-up included. Benches emit one record
    // per measurement, so the process-wide counter delta attributes the
    // steals without threading a meter through every harness. Always 0
    // under the non-stealing policies. bench_compare.py treats this as a
    // counter (reported, excluded from record identity).
    static std::uint64_t last_steals = 0;
    const std::uint64_t now = work_steal_count();
    full.field("steals", static_cast<std::int64_t>(now - last_steals));
    last_steals = now;
  }
  full.append(record);
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot append to %s\n", path.c_str());
    return;
  }
  std::fputs(full.to_line().c_str(), f);
  std::fclose(f);
}

SparseTensor make_dataset(const std::string& preset_name, double scale,
                          std::uint64_t seed) {
  const DatasetPreset& preset = find_preset(preset_name);
  const SyntheticConfig cfg = preset.scaled(scale, seed);
  std::printf("# dataset %s @ scale %g: %s, %llu nnz\n", preset.name.c_str(),
              scale, format_dims(cfg.dims).c_str(),
              static_cast<unsigned long long>(cfg.nnz));
  std::fflush(stdout);
  return generate_synthetic(cfg);
}

std::vector<la::Matrix> make_factors(const SparseTensor& t, idx_t rank,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Matrix> factors;
  factors.reserve(static_cast<std::size_t>(t.order()));
  for (int m = 0; m < t.order(); ++m) {
    factors.push_back(la::Matrix::random(t.dim(m), rank, rng));
  }
  return factors;
}

double time_mttkrp_sweeps(const CsfSet& set,
                          const std::vector<la::Matrix>& factors,
                          idx_t rank, const MttkrpOptions& opts, int iters,
                          std::string* strategies) {
  const int order = set.order();
  // Plan construction (partitioning, strategy choice, workspace sizing)
  // happens once here, outside the timed region — the same shape as the
  // CP-ALS driver.
  MttkrpPlan plan(set, rank, opts);
  // Pre-size output buffers outside the timed region.
  std::vector<la::Matrix> outs;
  for (int m = 0; m < order; ++m) {
    outs.emplace_back(set.csfs().front().dims()[static_cast<std::size_t>(m)],
                      rank);
  }
  // Warm once (first-touch page faults are not what the paper measures).
  for (int m = 0; m < order; ++m) {
    plan.execute(factors, m, outs[static_cast<std::size_t>(m)]);
    if (strategies != nullptr) {
      if (!strategies->empty()) *strategies += ",";
      *strategies += sync_strategy_name(plan.mode_plan(m).strategy);
    }
  }
  WallTimer timer;
  timer.start();
  for (int it = 0; it < iters; ++it) {
    for (int m = 0; m < order; ++m) {
      plan.execute(factors, m, outs[static_cast<std::size_t>(m)]);
    }
  }
  timer.stop();
  return timer.seconds();
}

RoutineTimers run_cpals_trials(const SparseTensor& tensor,
                               const CpalsOptions& opts, int trials) {
  {
    // Untimed warm-up: first-touch page faults and allocator growth are
    // not part of what the paper measures.
    SparseTensor work = tensor;
    CpalsOptions warm = opts;
    warm.max_iterations = 1;
    (void)cp_als(work, warm);
  }
  RoutineTimers total;
  for (int trial = 0; trial < trials; ++trial) {
    SparseTensor work = tensor;
    const CpalsResult r = cp_als(work, opts);
    total.accumulate(r.timers);
  }
  total.scale(1.0 / trials);
  return total;
}

std::vector<RoutineTimers> run_impls_fair(
    const SparseTensor& tensor, const CpalsOptions& base_opts,
    const std::vector<std::string>& impl_names, int trials,
    std::vector<std::uint64_t>* steals, std::uint64_t* csf_bytes,
    std::uint64_t* value_bytes, std::vector<double>* fits,
    std::vector<ResilienceCounters>* resilience) {
  std::vector<CpalsOptions> opts;
  for (const auto& name : impl_names) {
    CpalsOptions o = base_opts;
    apply_impl_variant(find_impl_variant(name), o);
    opts.push_back(o);
  }
  // Warm every variant (page faults, allocator growth, code paths).
  // Warm-ups never checkpoint: the counters must describe the timed work.
  for (const auto& o : opts) {
    SparseTensor work = tensor;
    CpalsOptions warm = o;
    warm.max_iterations = 1;
    warm.resilience.checkpoint_every = 0;
    (void)cp_als(work, warm);
  }
  std::vector<RoutineTimers> totals(impl_names.size());
  if (steals != nullptr) {
    steals->assign(impl_names.size(), 0);
  }
  if (fits != nullptr) {
    fits->assign(impl_names.size(), 0.0);
  }
  if (resilience != nullptr) {
    resilience->assign(impl_names.size(), ResilienceCounters{});
  }
  std::vector<double> ckpt_min(impl_names.size(),
                               std::numeric_limits<double>::infinity());
  for (int trial = 0; trial < trials; ++trial) {
    for (std::size_t i = 0; i < opts.size(); ++i) {
      SparseTensor work = tensor;
      const std::uint64_t steals_before = work_steal_count();
      const CpalsResult r = cp_als(work, opts[i]);
      if (steals != nullptr) {
        (*steals)[i] += work_steal_count() - steals_before;
      }
      if (csf_bytes != nullptr) {
        *csf_bytes = r.csf_bytes;
      }
      if (value_bytes != nullptr) {
        *value_bytes = r.value_bytes;
      }
      if (fits != nullptr && !r.fit_history.empty()) {
        (*fits)[i] = r.fit_history.back();
      }
      if (resilience != nullptr) {
        ResilienceCounters& c = (*resilience)[i];
        c.retries += r.resilience.retries;
        c.rollbacks += r.resilience.rollbacks;
        c.checkpoints += r.resilience.checkpoints;
        c.checkpoint_failures += r.resilience.checkpoint_failures;
        c.checkpoint_bytes += r.resilience.checkpoint_bytes;
        ckpt_min[i] = std::min(ckpt_min[i], r.resilience.checkpoint_seconds);
        c.faults_injected += r.resilience.faults_injected;
        c.gram_bumps += r.resilience.gram_bumps;
      }
      totals[i].accumulate(r.timers);
    }
  }
  for (auto& t : totals) {
    t.scale(1.0 / trials);
  }
  if (resilience != nullptr) {
    // Checkpoint cost reports the MIN over trials, not the mean: an fsync
    // that collides with an unrelated journal commit costs ~0.3 s, and one
    // such spike would dominate any average. The overhead contract bounds
    // the intrinsic serialize+sync cost, which the best trial measures;
    // event counts stay sums and bytes (identical per trial) average.
    for (std::size_t i = 0; i < resilience->size(); ++i) {
      ResilienceCounters& c = (*resilience)[i];
      c.checkpoint_seconds = std::isinf(ckpt_min[i]) ? 0.0 : ckpt_min[i];
      c.checkpoint_bytes = static_cast<std::uint64_t>(
          c.checkpoint_bytes / static_cast<std::uint64_t>(trials));
    }
  }
  return totals;
}

void print_routine_header(const char* label) {
  std::printf("%-28s", label);
  for (int r = 0; r < kNumRoutines; ++r) {
    std::printf(" %10s", routine_name(static_cast<Routine>(r)));
  }
  std::printf("\n");
}

void print_routine_row(const char* label, const RoutineTimers& timers) {
  std::printf("%-28s", label);
  for (int r = 0; r < kNumRoutines; ++r) {
    std::printf(" %10.4f", timers.seconds(static_cast<Routine>(r)));
  }
  std::printf("\n");
  std::fflush(stdout);
}

void print_series_header(const std::vector<int>& threads) {
  std::printf("%-24s", "threads");
  for (const int t : threads) {
    std::printf(" %10d", t);
  }
  std::printf("\n");
}

void print_series(const std::string& label, const std::vector<int>& threads,
                  const std::vector<double>& seconds) {
  std::printf("%-24s", label.c_str());
  for (std::size_t i = 0; i < threads.size() && i < seconds.size(); ++i) {
    std::printf(" %10.4f", seconds[i]);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace sptd::bench
