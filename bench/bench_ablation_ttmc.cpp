/// \file bench_ablation_ttmc.cpp
/// \brief Ablation: COO vs CSF TTMc (the kernel behind SPLATT's Tucker
///        work). CSF shares partial Kronecker products across nonzeros
///        with common fiber prefixes; COO recomputes them per nonzero.
///        The win grows with core size and with fiber density — this
///        harness sweeps core size on one dataset and reports the ratio.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_ttmc", "COO vs CSF TTMc");
  add_common_flags(cli, "nell-2", "0.01", "3", "1");
  cli.add("core-list", "4,8,12,16", "core sizes to sweep (same per mode)");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: TTMc over COO vs CSF ==\n");
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();

  SparseTensor sorted = x;
  const auto mode_order = csf_mode_order(x.dims(), -1);
  sort_tensor_perm(sorted, mode_order, nthreads);
  const CsfTensor csf(sorted, mode_order);
  const int root = csf.mode_at_level(0);
  // Root-slice schedule built once and reused by every repetition, the
  // same shape tucker_hooi uses.
  const SliceSchedule slices(schedule_flag(cli), csf.nfibers(0),
                             csf.root_nnz_prefix(), nthreads,
                             static_cast<nnz_t>(chunk_flag(cli)));

  std::printf("# root mode %d, %d thread(s), %d repetitions\n", root,
              nthreads, iters);
  std::printf("%8s %12s %12s %10s\n", "core", "coo (s)", "csf (s)",
              "coo/csf");
  for (const int core : cli.get_int_list("core-list")) {
    Rng rng(7);
    std::vector<la::Matrix> factors;
    for (int m = 0; m < x.order(); ++m) {
      factors.push_back(la::Matrix::random(
          x.dim(m), static_cast<idx_t>(core), rng));
    }
    std::size_t k = 1;
    for (int n = 0; n < x.order(); ++n) {
      if (n != root) k *= static_cast<std::size_t>(core);
    }
    la::Matrix out(x.dim(root), static_cast<idx_t>(k));

    ttmc(x, factors, root, out, nthreads);  // warm
    WallTimer coo_t;
    coo_t.start();
    for (int i = 0; i < iters; ++i) {
      ttmc(x, factors, root, out, nthreads);
    }
    coo_t.stop();

    ttmc_csf(csf, factors, out, nthreads, &slices);  // warm
    WallTimer csf_t;
    csf_t.start();
    for (int i = 0; i < iters; ++i) {
      ttmc_csf(csf, factors, out, nthreads, &slices);
    }
    csf_t.stop();

    std::printf("%8d %12.4f %12.4f %10.2fx\n", core, coo_t.seconds(),
                csf_t.seconds(), coo_t.seconds() / csf_t.seconds());
    std::fflush(stdout);
    emit_json_record(cli, "ablation_ttmc",
                     bench::JsonRecord()
                         .field("core", std::int64_t{core})
                         .field("coo_seconds", coo_t.seconds())
                         .field("csf_seconds", csf_t.seconds()));
  }
  return 0;
}
