/// \file bench_ablation_privatization.cpp
/// \brief Ablation: SPLATT's lock-vs-privatize decision. Sweeps the
///        privatization threshold's two extremes (always-lock,
///        always-privatize) against the heuristic default across thread
///        counts, on both the YELP shape (heuristic flips to locks beyond
///        2 threads) and the NELL-2 shape (privatizes everywhere). The
///        heuristic should track the better extreme on each dataset.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_privatization",
              "lock vs privatize vs SPLATT heuristic");
  add_common_flags(cli, "yelp", "0.01", "5", "1,2,4,8");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: synchronization strategy for non-root MTTKRP "
              "==\n");
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kOneMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  struct Config {
    const char* name;
    bool force_locks;
    double threshold;  // privatization threshold
  };
  const Config configs[] = {
      {"always-lock", true, 0.02},
      {"always-privatize", false, 1e18},
      {"splatt-heuristic", false, 0.02},
  };

  std::printf("# seconds for %d MTTKRP sweeps (OneMode CSF: two non-root "
              "modes)\n", iters);
  print_series_header(threads);
  for (const Config& cfg : configs) {
    std::vector<double> seconds;
    std::string strategies;
    for (const int t : threads) {
      MttkrpOptions mo;
      mo.nthreads = t;
      apply_kernel_flags(cli, mo);
      mo.force_locks = cfg.force_locks;
      mo.privatization_threshold = cfg.threshold;
      std::string* strat =
          (t == threads.back()) ? &strategies : nullptr;
      seconds.push_back(
          time_mttkrp_sweeps(set, factors, rank, mo, iters, strat));
    }
    std::printf("%-24s", cfg.name);
    for (const double s : seconds) {
      std::printf(" %10.4f", s);
    }
    std::printf("  [%s @%d]\n", strategies.c_str(), threads.back());
  }
  return 0;
}
