/// \file bench_ablation_tiling.cpp
/// \brief Ablation: mode tiling (the SPLATT feature the paper's port
///        omitted, Section V-A) against the synchronization strategies it
///        replaces. Compares, for a conflicting output mode:
///          coo+locks      — mutex pool on a flat COO kernel
///          coo+tiled      — lock-free 1-D output tiling (this repo's
///                           implementation of the omitted feature)
///          csf+locks      — SPLATT's locked CSF kernel
///          csf+privatize  — SPLATT's privatized CSF kernel
///        on both uniform and heavily skewed tensors (skew is tiling's
///        weak spot: tile balance degrades as single slices dominate).

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace sptd;

double time_reps(int reps, const std::function<void()>& body) {
  body();  // warm-up
  WallTimer t;
  t.start();
  for (int i = 0; i < reps; ++i) {
    body();
  }
  t.stop();
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_tiling",
              "mode tiling vs locks vs privatization");
  add_common_flags(cli, "yelp", "0.01", "5", "4");
  cli.add("zipf", "0.0,1.1", "skew exponents to test");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();
  const auto preset = find_preset(cli.get_string("preset"));
  const auto base_cfg =
      preset.scaled(cli.get_double("scale"),
                    static_cast<std::uint64_t>(cli.get_int("seed")));

  std::printf("== Ablation: tiling vs locks vs privatization ==\n");
  std::printf("# %d threads, %d MTTKRP repetitions of the largest mode\n",
              nthreads, iters);

  // Parse skew list as doubles.
  std::vector<double> skews;
  {
    const std::string s = cli.get_string("zipf");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::size_t end = (comma == std::string::npos) ? s.size() : comma;
      skews.push_back(std::stod(s.substr(pos, end - pos)));
      pos = end + 1;
    }
  }

  for (const double skew : skews) {
    SyntheticConfig cfg = base_cfg;
    cfg.zipf_exponent = skew;
    SparseTensor x = generate_synthetic(cfg);
    // Output mode: the largest (worst privatization footprint).
    int mode = 0;
    for (int m = 1; m < x.order(); ++m) {
      if (x.dim(m) > x.dim(mode)) mode = m;
    }
    auto factors = make_factors(x, rank, 7);
    la::Matrix out(x.dim(mode), rank);

    std::printf("-- zipf %.2f (%s, mode %d) --\n", skew,
                format_dims(x.dims()).c_str(), mode);

    {
      MttkrpOptions mo;
      mo.nthreads = nthreads;
      const double s = time_reps(iters, [&] {
        mttkrp_coo(x, factors, mode, out, mo);
      });
      std::printf("  %-16s %10.4f s\n", "coo+locks", s);
    }
    {
      // --schedule static gives the uniform-row-range tile baseline;
      // weighted (default) balances tiles by nonzero count. Dynamic /
      // workstealing requests coerce to weighted — the JSON record
      // carries the policy that actually shaped the tiles.
      const TiledTensor tiled(x, mode, nthreads, schedule_flag(cli));
      const double s = time_reps(iters, [&] {
        mttkrp_tiled(tiled, factors, out);
      });
      std::printf("  %-16s %10.4f s  (tile policy %s)\n", "coo+tiled", s,
                  schedule_policy_name(tiled.effective_policy()));
      emit_json_record(
          cli, "ablation_tiling",
          JsonRecord()
              .field("config", "coo+tiled")
              .field("zipf", skew)
              .field("threads", std::int64_t{nthreads})
              .field("tile_policy",
                     schedule_policy_name(tiled.effective_policy()))
              .field("seconds", s));
    }
    {
      SparseTensor work = x;
      // Root the CSF away from the output mode so the kernel conflicts.
      const CsfSet set(work, CsfPolicy::kOneMode, nthreads, nullptr,
                       SortVariant::kAllOpts, csf_layout_flag(cli));
      for (const bool privatize : {false, true}) {
        MttkrpOptions mo;
        mo.nthreads = nthreads;
        apply_kernel_flags(cli, mo);
        mo.force_locks = !privatize;
        mo.privatization_threshold = privatize ? 1e18 : 0.0;
        MttkrpWorkspace ws(mo, rank, x.order());
        const double s = time_reps(iters, [&] {
          mttkrp(set, factors, mode, out, ws);
        });
        std::printf("  %-16s %10.4f s  (strategy %s)\n",
                    privatize ? "csf+privatize" : "csf+locks", s,
                    sync_strategy_name(ws.last_strategy));
      }
      // CSF-level leaf tiling (the omitted SPLATT feature, full form):
      // only applicable when the output mode sits at the leaf of the rep.
      int level = 0;
      const CsfTensor& rep = set.csf_for_mode(mode, level);
      if (level == rep.order() - 1) {
        MttkrpOptions mo;
        mo.nthreads = nthreads;
        apply_kernel_flags(cli, mo);
        mo.use_tiling = true;
        MttkrpWorkspace ws(mo, rank, x.order());
        const double s = time_reps(iters, [&] {
          mttkrp(set, factors, mode, out, ws);
        });
        std::printf("  %-16s %10.4f s  (strategy %s)\n", "csf+tiled", s,
                    sync_strategy_name(ws.last_strategy));
      }
    }
  }
  return 0;
}
