/// \file bench_ablation_oversubscribe.cpp
/// \brief Analogue of the paper's Section V-E (Qthreads vs OpenMP
///        conflicts). Two runtimes cannot fight here — everything is
///        OpenMP — but the *mechanism* the paper isolates is threads of
///        one phase occupying cores the next phase needs. This harness
///        measures that directly: the Inverse routine (Cholesky solves)
///        and the Mat-norm routine run back-to-back after a parallel
///        MTTKRP, with team sizes swept past the hardware core count.
///        Expected shape: times flat (or improving) up to the core count,
///        degrading beyond it — the paper's observation that the 36-core
///        box went bad once Qthreads workers + OpenMP threads exceeded
///        the cores.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_oversubscribe",
              "phase interference under thread oversubscription");
  add_common_flags(cli, "yelp", "0.01", "5", "1,2,4,8,16,32");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: oversubscription (Section V-E analogue) ==\n");
  std::printf("# hardware threads: %d\n", hardware_threads());
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  // Fixed-size inverse problem (rank x rank normal equations over the
  // largest mode's rows), like one CP-ALS inverse step at rank 35.
  idx_t max_dim = 0;
  for (int m = 0; m < x.order(); ++m) {
    max_dim = std::max(max_dim, x.dim(m));
  }
  Rng rng(9);
  la::Matrix a = la::Matrix::random(static_cast<idx_t>(rank) + 5, rank,
                                    rng);
  la::Matrix spd(rank, rank);
  la::ata(a, spd, 1);
  for (idx_t i = 0; i < rank; ++i) {
    spd(i, i) += rank;
  }
  const la::Matrix rhs = la::Matrix::random(max_dim, rank, rng);

  std::printf("# per-phase seconds: MTTKRP sweep x%d, then INVERSE x%d, "
              "then MAT NORM x%d\n", iters, iters, iters);
  std::printf("%8s %12s %12s %12s\n", "threads", "mttkrp", "inverse",
              "matnorm");
  for (const int t : threads) {
    MttkrpOptions mo;
    mo.nthreads = t;
    apply_kernel_flags(cli, mo);
    const double mttkrp_s =
        time_mttkrp_sweeps(set, factors, rank, mo, iters);

    WallTimer inv;
    inv.start();
    for (int i = 0; i < iters; ++i) {
      la::Matrix m = rhs;
      la::solve_normal_equations(spd, m, t);
    }
    inv.stop();

    la::Matrix norm_target = rhs;
    std::vector<val_t> lambda(rank);
    WallTimer nrm;
    nrm.start();
    for (int i = 0; i < iters; ++i) {
      la::normalize_columns(norm_target, lambda, la::MatNorm::kMax, t);
    }
    nrm.stop();

    std::printf("%8d %12.4f %12.4f %12.4f\n", t, mttkrp_s, inv.seconds(),
                nrm.seconds());
    std::fflush(stdout);
  }
  return 0;
}
