/// \file bench_ablation_oversubscribe.cpp
/// \brief Analogue of the paper's Section V-E (Qthreads vs OpenMP
///        conflicts). Two runtimes cannot fight here — everything is
///        OpenMP — but the *mechanism* the paper isolates is threads of
///        one phase occupying cores the next phase needs. This harness
///        measures that directly: the Inverse routine (Cholesky solves)
///        and the Mat-norm routine run back-to-back after a parallel
///        MTTKRP, with team sizes swept past the hardware core count.
///        Expected shape: times flat (or improving) up to the core count,
///        degrading beyond it — the paper's observation that the 36-core
///        box went bad once Qthreads workers + OpenMP threads exceeded
///        the cores.
///
///        --concurrent N adds the scenario the pool backend exists for:
///        N whole CP-ALS runs sharing one process, each asking for a full
///        hardware-sized team. Under --backend omp every run's regions
///        wake a private libgomp team (N x T threads on T cores — the
///        in-process flavour of the paper's two-runtime conflict); under
///        --backend pool every region multiplexes onto the one persistent
///        worker pool, so the box never oversubscribes. The recorded
///        wall seconds (start of first run to last join) is what ci.sh
///        gates pool-vs-omp composition on.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_oversubscribe",
              "phase interference under thread oversubscription");
  add_common_flags(cli, "yelp", "0.01", "5", "1,2,4,8,16,32");
  cli.add("concurrent", "0",
          "run N whole CP-ALS decompositions concurrently in this process "
          "(0 = skip); the composition scenario the pool backend targets");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: oversubscription (Section V-E analogue) ==\n");
  std::printf("# hardware threads: %d\n", hardware_threads());
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  // Fixed-size inverse problem (rank x rank normal equations over the
  // largest mode's rows), like one CP-ALS inverse step at rank 35.
  idx_t max_dim = 0;
  for (int m = 0; m < x.order(); ++m) {
    max_dim = std::max(max_dim, x.dim(m));
  }
  Rng rng(9);
  la::Matrix a = la::Matrix::random(static_cast<idx_t>(rank) + 5, rank,
                                    rng);
  la::Matrix spd(rank, rank);
  la::ata(a, spd, 1);
  for (idx_t i = 0; i < rank; ++i) {
    spd(i, i) += rank;
  }
  const la::Matrix rhs = la::Matrix::random(max_dim, rank, rng);

  std::printf("# per-phase seconds: MTTKRP sweep x%d, then INVERSE x%d, "
              "then MAT NORM x%d\n", iters, iters, iters);
  std::printf("%8s %12s %12s %12s\n", "threads", "mttkrp", "inverse",
              "matnorm");
  for (const int t : threads) {
    MttkrpOptions mo;
    mo.nthreads = t;
    apply_kernel_flags(cli, mo);
    const double mttkrp_s =
        time_mttkrp_sweeps(set, factors, rank, mo, iters);

    WallTimer inv;
    inv.start();
    for (int i = 0; i < iters; ++i) {
      la::Matrix m = rhs;
      la::solve_normal_equations(spd, m, t);
    }
    inv.stop();

    la::Matrix norm_target = rhs;
    std::vector<val_t> lambda(rank);
    WallTimer nrm;
    nrm.start();
    for (int i = 0; i < iters; ++i) {
      la::normalize_columns(norm_target, lambda, la::MatNorm::kMax, t);
    }
    nrm.stop();

    std::printf("%8d %12.4f %12.4f %12.4f\n", t, mttkrp_s, inv.seconds(),
                nrm.seconds());
    std::fflush(stdout);
    emit_json_record(cli, "ablation_oversubscribe",
                     bench::JsonRecord()
                         .field("config", "phases")
                         .field("threads", std::int64_t{t})
                         .field("MTTKRP", mttkrp_s)
                         .field("INVERSE", inv.seconds())
                         .field("MAT NORM", nrm.seconds()));
  }

  // Composition scenario: N whole decompositions share the process, each
  // asking for a hardware-sized team. omp wakes N private libgomp teams
  // (the in-process analogue of the paper's Qthreads-vs-OpenMP conflict);
  // pool multiplexes every region onto the one persistent worker set.
  const int concurrent = static_cast<int>(cli.get_int("concurrent"));
  if (concurrent >= 1) {
    // Per-run team = the sweep's largest team, floored at 2: a team of
    // one takes the inline shortcut on every backend and launches
    // nothing, so on a 1-core box the scenario would measure no team
    // machinery at all. With >= 2 the omp path wakes concurrent * team
    // threads while pool multiplexes them onto its fixed worker set —
    // the larger the requested teams, the starker the gap.
    const int team =
        std::max(2, *std::max_element(threads.begin(), threads.end()));
    CpalsOptions co;
    co.rank = rank;
    co.max_iterations = iters;
    co.tolerance = 0.0;
    co.nthreads = team;
    apply_kernel_flags(cli, co);

    // Private tensor copies built before the clock starts: the measured
    // window is decomposition work (sort/CSF build + iterations), the
    // same under either backend.
    std::vector<SparseTensor> copies(static_cast<std::size_t>(concurrent),
                                     x);
    WallTimer wall;
    wall.start();
    std::vector<std::thread> runs;
    runs.reserve(static_cast<std::size_t>(concurrent));
    for (int r = 0; r < concurrent; ++r) {
      runs.emplace_back([&, r] {
        cp_als(copies[static_cast<std::size_t>(r)], co);
      });
    }
    for (std::thread& r : runs) {
      r.join();
    }
    wall.stop();

    const std::string config =
        "concurrent-" + std::to_string(concurrent);
    std::printf("# %d concurrent CP-ALS runs x %d threads each "
                "(backend %s): %.4f s wall\n",
                concurrent, team, parallel_backend_name(co.backend),
                wall.seconds());
    std::fflush(stdout);
    emit_json_record(cli, "ablation_oversubscribe",
                     bench::JsonRecord()
                         .field("config", config)
                         .field("threads", std::int64_t{team})
                         .field("seconds", wall.seconds()));
  }
  return 0;
}
