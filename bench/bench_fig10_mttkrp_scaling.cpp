/// \file bench_fig10_mttkrp_scaling.cpp
/// \brief Reproduces **Figure 10** (MTTKRP runtime vs threads, NELL-2):
///        C vs Chapel-initial vs Chapel-optimized. NELL-2 never needs
///        locks, so the initial port's gap is pure slice overhead.
/// Expected shape: chapel-initial ~an order of magnitude slower at every
/// team size; chapel-optimize within ~4-16% of C (paper: 84-96%).
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --iters 20.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_scaling_figure("Figure 10", "nell-2", "0.01",
                                         argc, argv);
}
