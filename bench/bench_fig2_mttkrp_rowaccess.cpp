/// \file bench_fig2_mttkrp_rowaccess.cpp
/// \brief Reproduces **Figure 2** (Chapel MTTKRP runtime, matrix access
///        optimizations, YELP): slice vs 2D-index vs pointer row access.
///
/// Expected shape: slice is roughly an order of magnitude slower than
/// direct indexing (paper: 12x on YELP); pointer edges out 2D indexing
/// (paper: ~1.26x — smaller here because a C++ optimizer hoists the row
/// offset that Chapel recomputed).
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --iters 20.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_rowaccess_figure("Figure 2", "yelp", "0.01",
                                           argc, argv);
}
