/// \file bench_fig7_routines.cpp
/// \brief Reproduces **Figure 7** (per-routine CP-ALS runtimes, YELP, 32
///        threads): reference C vs optimized port at full parallelism.
/// Default team size is 4 for laptop runs; pass --threads-list 32 to
/// match the paper (oversubscription permitted).
/// Expected shape: MTTKRP parity; the port's INVERSE column inflates
/// (the paper's Qthreads/OpenMP conflict; here the analogous single-
/// threaded solve is visible when comparing across team sizes).
/// Paper-scale: --scale 1.0 --iters 20 --trials 10 --threads-list 32.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_routines_figure("Figure 7", "yelp", "0.01", "4",
                                          argc, argv);
}
