/// \file bench_fig6_routines.cpp
/// \brief Reproduces **Figure 6** (per-routine CP-ALS runtimes, NELL-2,
///        1 thread): reference C code paths vs the fully optimized port.
/// Expected shape: near-parity (paper: Chapel ~8% slower MTTKRP, ~25%
/// slower sort at 1 thread).
/// Paper-scale: --scale 1.0 --iters 20 --trials 10.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_routines_figure("Figure 6", "nell-2", "0.01", "1",
                                          argc, argv);
}
