/// \file bench_table1_datasets.cpp
/// \brief Reproduces **Table I** (properties of data sets): name,
///        dimensions, nonzeros, density and size on disk for the five
///        datasets the paper evaluates.
///
/// Full-size rows come from the preset definitions (what the paper
/// tabulates). With --verify-scale > 0, each dataset is also synthesized
/// at that scale and its measured statistics are printed beneath the
/// preset row, demonstrating that the generators deliver the stated
/// shapes.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;

  Options cli("bench_table1_datasets", "Table I: properties of data sets");
  cli.add("verify-scale", "0.002",
          "also synthesize each dataset at this scale and print measured "
          "stats (0 disables)");
  cli.add("seed", "42", "generator seed");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  std::printf("== Table I: properties of data sets ==\n");
  std::printf("%-15s %-22s %12s %10s %12s\n", "Name", "Dimensions",
              "Non-Zeros", "Density", "Size (.tns)");
  const double verify_scale = cli.get_double("verify-scale");
  for (const auto& preset : table1_presets()) {
    // The paper's Table I row (full-size, from the preset definition).
    const std::uint64_t tns_bytes =
        preset.nnz *
        (7ULL * static_cast<std::uint64_t>(preset.dims.size()) + 18ULL);
    std::printf("%-15s %-22s %12llu %10.2e %12s\n", preset.name.c_str(),
                format_dims(preset.dims).c_str(),
                static_cast<unsigned long long>(preset.nnz),
                preset.density(), format_bytes(tns_bytes).c_str());

    if (verify_scale > 0.0) {
      const SparseTensor t = generate_synthetic(preset.scaled(
          verify_scale, static_cast<std::uint64_t>(cli.get_int("seed"))));
      const TensorStats s = compute_stats(t);
      std::printf("%-15s %-22s %12llu %10.2e %12s\n",
                  ("  @" + std::to_string(verify_scale)).c_str(),
                  format_dims(s.dims).c_str(),
                  static_cast<unsigned long long>(s.nnz), s.density,
                  format_bytes(s.tns_bytes).c_str());
    }
  }
  return 0;
}
