/// \file bench_fig1_sort.cpp
/// \brief Reproduces **Figure 1** (Chapel sorting runtime on NELL-2):
///        the four sorting-implementation variants across a thread sweep.
///
/// Variants: `initial` (per-recursion heap pivot array + copy-based
/// sub-array reassignment), `array-opt` (scalar pivots), `slices-opt`
/// (pointer-swap reassignment), `all-opts` (both — the reference
/// behaviour). Expected shape: initial slowest; array-opt shaves ~10%;
/// slices-opt a large constant factor; all-opts fastest at every thread
/// count (paper: ~8x total on NELL-2).
///
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --trials 10.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_fig1_sort", "Figure 1: sorting optimization ablation");
  add_common_flags(cli, "nell-2", "0.02", "1", "1,2,4,8");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const int fig1_trials = std::max(3, static_cast<int>(
      cli.get_int("trials")));
  init_parallel_runtime();

  std::printf("== Figure 1: sorting runtime by variant (%s) ==\n",
              cli.get_string("preset").c_str());
  const SparseTensor base =
      make_dataset(cli.get_string("preset"), cli.get_double("scale"),
                   static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto threads = cli.get_int_list("threads-list");
  const int trials = fig1_trials;
  const auto mode_order = csf_mode_order(base.dims(), -1);

  std::printf("# seconds to fully sort the tensor (counting sort + "
              "per-slice quicksort)\n");
  print_series_header(threads);
  for (const auto variant :
       {SortVariant::kInitial, SortVariant::kArrayOpt,
        SortVariant::kSlicesOpt, SortVariant::kAllOpts}) {
    std::vector<double> seconds;
    for (const int t : threads) {
      double total = 0.0;
      for (int trial = 0; trial < trials; ++trial) {
        SparseTensor work = base;  // fresh unsorted copy each trial
        WallTimer timer;
        timer.start();
        sort_tensor_perm(work, mode_order, t, variant);
        timer.stop();
        total += timer.seconds();
      }
      seconds.push_back(total / trials);
    }
    print_series(sort_variant_name(variant), threads, seconds);
  }
  return 0;
}
