/// \file bench_fig8_routines.cpp
/// \brief Reproduces **Figure 8** (per-routine CP-ALS runtimes, NELL-2,
///        32 threads). Default team size is 4 for laptop runs; pass
///        --threads-list 32 to match the paper.
/// Expected shape: MTTKRP near-parity; sort gap wider than at 1 thread.
/// Paper-scale: --scale 1.0 --iters 20 --trials 10 --threads-list 32.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_routines_figure("Figure 8", "nell-2", "0.01", "4",
                                          argc, argv);
}
