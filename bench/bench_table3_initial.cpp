/// \file bench_table3_initial.cpp
/// \brief Reproduces **Table III** (runtime in seconds for CP-ALS routines,
///        initial results): the reference C code paths vs the *unoptimized*
///        Chapel port (slice row access, sync-variable locks, naive sort)
///        on the YELP and NELL-2 shapes at two team sizes.
///
/// Paper-scale: --scale 1.0 --iters 20 --threads-list 1,32 --trials 10.
/// Expected shape: chapel-initial MTTKRP ~an order of magnitude slower
/// than C; sort several times slower; the other routines comparable.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_table3_initial",
              "Table III: initial per-routine CP-ALS runtimes");
  add_common_flags(cli, "yelp", "0.01", "3", "1,4");
  cli.add("presets", "yelp,nell-2", "comma list of datasets to run");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Table III: CP-ALS routine runtimes, C vs initial port ==\n");
  const auto threads = cli.get_int_list("threads-list");
  const int trials = static_cast<int>(cli.get_int("trials"));

  // Parse the preset list manually (comma separated names).
  std::vector<std::string> presets;
  {
    const std::string s = cli.get_string("presets");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      const std::size_t end = (comma == std::string::npos) ? s.size() : comma;
      if (end > pos) {
        presets.push_back(s.substr(pos, end - pos));
      }
      pos = end + 1;
    }
  }

  for (const auto& preset : presets) {
    const SparseTensor x =
        make_dataset(preset, cli.get_double("scale"),
                     static_cast<std::uint64_t>(cli.get_int("seed")));
    const std::vector<std::string> impls = {"c", "chapel-initial"};
    for (const int t : threads) {
      std::printf("-- %s, %d thread(s), %lld iterations --\n",
                  preset.c_str(), t,
                  static_cast<long long>(cli.get_int("iters")));
      print_routine_header("impl");
      CpalsOptions base;
      base.rank = static_cast<idx_t>(cli.get_int("rank"));
      base.max_iterations = static_cast<int>(cli.get_int("iters"));
      base.tolerance = 0.0;
      base.nthreads = t;
      apply_kernel_flags(cli, base);
      const auto results = run_impls_fair(x, base, impls, trials);
      for (std::size_t i = 0; i < impls.size(); ++i) {
        print_routine_row(impls[i].c_str(), results[i]);
      }
    }
  }
  return 0;
}
