/// \file bench_ablation_precision.cpp
/// \brief Ablation: value-stream precision (f64 / f32 / mixed).
///
/// MTTKRP is bandwidth-bound; once the index stream is compressed the
/// fp64 factor rows and nonzero values dominate the bytes per launch.
/// This harness quantifies what narrowing those streams buys and costs on
/// a Table I dataset: MTTKRP sweep time, value-stream bytes, and the
/// CP-ALS fit each precision reaches against the f64 baseline — the
/// number the `mixed` mode's accuracy contract is gated on (fp32 streams
/// with fp64 accumulation should track f64 to ~1e-6 while moving the
/// same bytes as pure f32).

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_precision",
              "value-stream precision ablation (f64/f32/mixed)");
  add_common_flags(cli, "yelp", "0.002", "5", "1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: value-stream precision (f64/f32/mixed) ==\n");
  SparseTensor base = make_dataset(cli.get_string("preset"),
                                   cli.get_double("scale"),
                                   static_cast<std::uint64_t>(
                                       cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();
  const auto factors = make_factors(base, rank, 7);

  SparseTensor work = base;
  const CsfSet set(work, CsfPolicy::kTwoMode, nthreads, nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));

  std::printf("# %d thread(s); seconds for %d MTTKRP sweeps; fit after "
              "%d CP-ALS iterations\n", nthreads, iters, iters);
  std::printf("%-8s %12s %14s %12s %14s\n", "prec", "seconds", "values",
              "fit", "|fit - f64|");
  double f64_fit = 0.0;
  for (const auto p :
       {Precision::kF64, Precision::kF32, Precision::kMixed}) {
    MttkrpOptions mo;
    mo.nthreads = nthreads;
    apply_kernel_flags(cli, mo);
    mo.precision = p;
    const double secs = time_mttkrp_sweeps(set, factors, rank, mo, iters);

    CpalsOptions co;
    co.rank = rank;
    co.max_iterations = iters;
    co.tolerance = 0.0;
    co.nthreads = nthreads;
    apply_kernel_flags(cli, co);
    co.precision = p;
    SparseTensor trial = base;
    const CpalsResult r = cp_als(trial, co);
    const double fit = r.fit_history.back();
    if (p == Precision::kF64) {
      f64_fit = fit;  // first in the sweep: the accuracy baseline
    }
    const double gap = std::abs(fit - f64_fit);

    std::printf("%-8s %12.4f %14s %12.8f %14.3e\n", precision_name(p),
                secs, format_bytes(r.value_bytes).c_str(), fit, gap);
    emit_json_record(cli, "ablation_precision",
                     bench::JsonRecord()
                         .field("precision", precision_name(p))
                         .field("threads", std::int64_t{nthreads})
                         .field("csf_bytes",
                                static_cast<std::int64_t>(r.csf_bytes))
                         .field("value_bytes",
                                static_cast<std::int64_t>(r.value_bytes))
                         .field("fit", fit)
                         .field("fit_gap_vs_f64", gap)
                         .field("seconds", secs));
  }
  return 0;
}
