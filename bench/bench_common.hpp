#pragma once
/// \file bench_common.hpp
/// \brief Shared machinery for the table/figure reproduction harnesses.
///
/// Every bench binary regenerates one table or figure of the paper. They
/// share: dataset synthesis from the Table I presets (scaled to laptop
/// size), timed MTTKRP mode sweeps, full CP-ALS runs with per-routine
/// breakdowns, and plain-text table printing in the paper's layout.
///
/// Common flags (every harness): --scale, --rank, --iters, --trials,
/// --threads-list, --seed. Paper-scale settings are documented per bench;
/// defaults finish in seconds on a laptop.

#include <cstdio>
#include <string>
#include <vector>

#include "sptd.hpp"

namespace sptd::bench {

/// Registers the flags shared by all harnesses. Besides the sweep knobs
/// this includes --schedule (slice scheduling policy for the kernels under
/// test), --chunk (dynamic-schedule claims-per-thread target), --kernels
/// (fixed = rank-specialized SIMD inner loops where available, generic =
/// force the runtime-rank loops) and --json (append one JSON record per
/// measurement to a file, so BENCH_*.json trajectories can compare
/// runs/policies offline).
void add_common_flags(Options& cli, const char* default_preset,
                      const char* default_scale, const char* default_iters,
                      const char* default_threads);

/// The --schedule flag, parsed.
SchedulePolicy schedule_flag(const Options& cli);

/// The --csf-layout flag, parsed (compressed = per-level narrowest index
/// widths, wide = the u32/u64 ablation baseline).
CsfLayout csf_layout_flag(const Options& cli);

/// The --precision flag, parsed (f64 | f32 | mixed; common/precision.hpp).
Precision precision_flag(const Options& cli);

/// The --backend flag, parsed (omp | pool; parallel/backend.hpp). The
/// default comes from SPTD_BACKEND (omp when unset).
ParallelBackendKind backend_flag(const Options& cli);

/// The --chunk flag, validated (>= 1) before any unsigned conversion can
/// wrap a negative value into a huge chunk target.
int chunk_flag(const Options& cli);

/// Applies the common kernel/schedule flags (--schedule, --chunk,
/// --kernels) onto MTTKRP options.
void apply_kernel_flags(const Options& cli, MttkrpOptions& opts);

/// Applies the same flags onto CP-ALS options.
void apply_kernel_flags(const Options& cli, CpalsOptions& opts);

/// Applies the same flags onto the distributed-simulation options (each
/// locale's plan consumes them), so the emitted JSON fields describe what
/// actually ran.
void apply_kernel_flags(const Options& cli, DistOptions& opts);

/// One measurement record for the --json sink: insertion-ordered key/value
/// pairs serialized as a single JSON object per line (JSON Lines). Every
/// record automatically carries the bench name, preset, scale, and
/// schedule fields from the CLI flags.
class JsonRecord {
 public:
  JsonRecord& field(const std::string& key, const std::string& value);
  JsonRecord& field(const std::string& key, const char* value);
  JsonRecord& field(const std::string& key, double value);
  JsonRecord& field(const std::string& key, std::int64_t value);

  /// Splices another record's fields after this one's.
  JsonRecord& append(const JsonRecord& other);

  /// True if a field with this key has been set.
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string to_line() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Appends \p record to the file named by --json (no-op when the flag is
/// empty), prefixed with the standard bench/preset/scale/schedule/chunk/
/// kernels fields. Every record also carries the selected kernel_width
/// (0 = generic loops): benches whose record already set one — e.g. the
/// row-access ablations, where the width depends on the swept policy —
/// keep theirs, otherwise the width the --rank/--kernels flags select
/// under pointer access is added. Records likewise carry a `steals`
/// counter: successful work-steal chunk claims since the previous record
/// (nonzero only under --schedule workstealing), so a skewed run can
/// prove stealing engaged.
void emit_json_record(const Options& cli, const char* bench,
                      JsonRecord record);

/// Generates a preset dataset at the requested scale, printing one line
/// describing it.
SparseTensor make_dataset(const std::string& preset_name, double scale,
                          std::uint64_t seed);

/// Deterministic factor matrices for a tensor.
std::vector<la::Matrix> make_factors(const SparseTensor& t, idx_t rank,
                                     std::uint64_t seed);

/// Times \p iters full mode sweeps (every mode once per sweep) of the
/// CSF MTTKRP under the given options; returns total seconds. The
/// strategy chosen for each mode of the first sweep is appended to
/// \p strategies when non-null.
double time_mttkrp_sweeps(const CsfSet& set,
                          const std::vector<la::Matrix>& factors,
                          idx_t rank, const MttkrpOptions& opts, int iters,
                          std::string* strategies = nullptr);

/// Runs CP-ALS \p trials times with the given options on copies of
/// \p tensor and returns the per-routine timer table averaged over trials.
RoutineTimers run_cpals_trials(const SparseTensor& tensor,
                               const CpalsOptions& opts, int trials);

/// Fair comparison of implementation variants: warms every variant once,
/// then interleaves trials round-robin so all variants face the same
/// allocator/huge-page state (completing all trials of one variant before
/// the next systematically favours whichever ran in the younger heap).
/// Returns one averaged timer table per variant, in input order. When
/// \p steals is non-null it receives each variant's work-steal claim
/// count summed over its (timed) trials — the interleaving means the
/// process-wide counter delta at emit time cannot attribute steals to a
/// variant, so this measures them around each cp_als call instead.
/// \p csf_bytes, when non-null, receives the CSF footprint of the timed
/// runs (each run overwrites it; the value is identical across variants
/// and trials because they share one layout/policy/tensor).
/// \p value_bytes, when non-null, likewise receives the bytes of tensor
/// values streamed per MTTKRP launch under the run's precision.
/// \p fits, when non-null, receives each variant's final fit (runs are
/// deterministic in the seed, so the value is trial-independent) — the
/// quality number the precision ablation gates on.
/// \p resilience, when non-null, receives each variant's resilience
/// counters summed over the timed trials (retries, rollbacks, checkpoint
/// bytes/seconds) — warm-up runs checkpoint nothing, so the counters
/// describe exactly the measured work.
std::vector<RoutineTimers> run_impls_fair(
    const SparseTensor& tensor, const CpalsOptions& base_opts,
    const std::vector<std::string>& impl_names, int trials,
    std::vector<std::uint64_t>* steals = nullptr,
    std::uint64_t* csf_bytes = nullptr,
    std::uint64_t* value_bytes = nullptr,
    std::vector<double>* fits = nullptr,
    std::vector<ResilienceCounters>* resilience = nullptr);

/// Prints the header used by per-routine tables (Figures 5-8, Table III).
void print_routine_header(const char* label);

/// Prints one row of per-routine seconds.
void print_routine_row(const char* label, const RoutineTimers& timers);

/// Prints a figure-style series: label then seconds per thread count.
void print_series(const std::string& label,
                  const std::vector<int>& threads,
                  const std::vector<double>& seconds);

/// Prints the series header row ("threads  1  2  4 ...").
void print_series_header(const std::vector<int>& threads);

}  // namespace sptd::bench
