/// \file bench_ablation_csf.cpp
/// \brief Ablation: CSF allocation policy (one / two / all
///        representations). SPLATT defaults to TWOMODE; ALLMODE buys
///        always-root (lock-free) MTTKRP kernels with N-fold memory;
///        ONEMODE is the memory floor but leaves two modes on
///        internal/leaf kernels. This harness quantifies the trade on a
///        Table I dataset: per-mode MTTKRP time, chosen sync strategy,
///        and CSF bytes per policy.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_csf", "CSF allocation policy ablation");
  add_common_flags(cli, "yelp", "0.01", "5", "4");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: CSF policy (one/two/all) ==\n");
  SparseTensor base = make_dataset(cli.get_string("preset"),
                                   cli.get_double("scale"),
                                   static_cast<std::uint64_t>(
                                       cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();
  const auto factors = make_factors(base, rank, 7);

  std::printf("# %d thread(s); seconds for %d MTTKRP sweeps; memory is "
              "total CSF bytes\n", nthreads, iters);
  std::printf("%-8s %12s %14s  strategies per mode\n", "policy", "seconds",
              "memory");
  for (const auto policy : {CsfPolicy::kOneMode, CsfPolicy::kTwoMode,
                            CsfPolicy::kAllMode}) {
    SparseTensor work = base;
    const CsfSet set(work, policy, nthreads, nullptr,
                     SortVariant::kAllOpts, csf_layout_flag(cli));
    MttkrpOptions mo;
    mo.nthreads = nthreads;
    apply_kernel_flags(cli, mo);
    std::string strategies;
    const double secs =
        time_mttkrp_sweeps(set, factors, rank, mo, iters, &strategies);
    std::printf("%-8s %12.4f %14s  [%s]\n", csf_policy_name(policy), secs,
                format_bytes(set.memory_bytes()).c_str(),
                strategies.c_str());
    emit_json_record(cli, "ablation_csf",
                     bench::JsonRecord()
                         .field("csf", csf_policy_name(policy))
                         .field("threads", std::int64_t{nthreads})
                         .field("strategies", strategies)
                         .field("csf_bytes", static_cast<std::int64_t>(
                                                 set.memory_bytes()))
                         .field("value_bytes",
                                static_cast<std::int64_t>(
                                    set.value_bytes(mo.precision)))
                         .field("seconds", secs));
  }
  return 0;
}
