/// \file bench_fig5_routines.cpp
/// \brief Reproduces **Figure 5** (per-routine CP-ALS runtimes, YELP,
///        1 thread): reference C code paths vs the fully optimized port.
/// Expected shape: near-parity on every routine (paper: Chapel within
/// ~7% on MTTKRP, ~13% on sort at 1 thread).
/// Paper-scale: --scale 1.0 --iters 20 --trials 10.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_routines_figure("Figure 5", "yelp", "0.01", "1",
                                          argc, argv);
}
