/// \file bench_kernels_micro.cpp
/// \brief google-benchmark microbenchmarks for the individual kernels
///        underlying the paper's routines: syrk (Mat A^TA), Cholesky
///        solve (Inverse), column normalization (Mat norm), the MTTKRP
///        inner loop under each row-access policy, sorting, and the lock
///        acquire/release fast path.

#include <benchmark/benchmark.h>

#include "sptd.hpp"

namespace {

using namespace sptd;

la::Matrix random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return la::Matrix::random(rows, cols, rng);
}

void BM_Ata(benchmark::State& state) {
  const auto rows = static_cast<idx_t>(state.range(0));
  const la::Matrix a = random_matrix(rows, 35, 1);
  la::Matrix out(35, 35);
  for (auto _ : state) {
    la::ata(a, out, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Ata)->Arg(1000)->Arg(10000);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<idx_t>(state.range(0));
  la::Matrix a = random_matrix(n + 4, n, 2);
  la::Matrix spd(n, n);
  la::ata(a, spd, 1);
  for (idx_t i = 0; i < n; ++i) {
    spd(i, i) += n;
  }
  la::Matrix rhs = random_matrix(1000, n, 3);
  for (auto _ : state) {
    la::Matrix m = rhs;
    la::solve_normal_equations(spd, m, 1);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(35);

void BM_NormalizeColumns(benchmark::State& state) {
  la::Matrix a = random_matrix(static_cast<idx_t>(state.range(0)), 35, 4);
  std::vector<val_t> lambda(35);
  const auto which =
      state.range(1) == 0 ? la::MatNorm::kTwo : la::MatNorm::kMax;
  for (auto _ : state) {
    la::normalize_columns(a, lambda, which, 1);
    benchmark::DoNotOptimize(lambda.data());
  }
}
BENCHMARK(BM_NormalizeColumns)->Args({10000, 0})->Args({10000, 1});

void BM_MttkrpRowAccess(benchmark::State& state) {
  SparseTensor x = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 5,
       .zipf_exponent = 0.5});
  const idx_t rank = 35;
  Rng rng(6);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), rank, rng));
  }
  const CsfSet set(x, CsfPolicy::kTwoMode, 1);
  MttkrpOptions mo;
  mo.nthreads = 1;
  mo.row_access = static_cast<RowAccess>(state.range(0));
  MttkrpWorkspace ws(mo, rank, 3);
  la::Matrix out(x.dim(0), rank);
  for (auto _ : state) {
    mttkrp(set, factors, 0, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(row_access_name(mo.row_access));
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_MttkrpRowAccess)
    ->Arg(static_cast<int>(RowAccess::kSlice))
    ->Arg(static_cast<int>(RowAccess::kIndex2D))
    ->Arg(static_cast<int>(RowAccess::kPointer));

void BM_SortVariant(benchmark::State& state) {
  const SparseTensor base = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 7,
       .zipf_exponent = 0.5});
  const auto variant = static_cast<SortVariant>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SparseTensor work = base;
    state.ResumeTiming();
    sort_tensor(work, 0, 1, variant);
    benchmark::DoNotOptimize(work.vals().data());
  }
  state.SetLabel(sort_variant_name(variant));
}
BENCHMARK(BM_SortVariant)
    ->Arg(static_cast<int>(SortVariant::kInitial))
    ->Arg(static_cast<int>(SortVariant::kArrayOpt))
    ->Arg(static_cast<int>(SortVariant::kSlicesOpt))
    ->Arg(static_cast<int>(SortVariant::kAllOpts));

void BM_LockUncontended(benchmark::State& state) {
  AnyMutexPool pool(static_cast<LockKind>(state.range(0)));
  idx_t id = 0;
  for (auto _ : state) {
    pool.lock(id);
    pool.unlock(id);
    id = (id + 1) & 1023;
  }
  state.SetLabel(lock_kind_name(static_cast<LockKind>(state.range(0))));
}
BENCHMARK(BM_LockUncontended)
    ->Arg(static_cast<int>(LockKind::kSync))
    ->Arg(static_cast<int>(LockKind::kAtomic))
    ->Arg(static_cast<int>(LockKind::kFifoSync))
    ->Arg(static_cast<int>(LockKind::kOmp));

void BM_Ttmc(benchmark::State& state) {
  SparseTensor x = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 9});
  const auto core = static_cast<idx_t>(state.range(0));
  Rng rng(10);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), core, rng));
  }
  la::Matrix out(x.dim(0), core * core);
  for (auto _ : state) {
    ttmc(x, factors, 0, out, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_Ttmc)->Arg(4)->Arg(8)->Arg(16);

void BM_SymmetricEigen(benchmark::State& state) {
  const auto n = static_cast<idx_t>(state.range(0));
  Rng rng(11);
  const la::Matrix b = la::Matrix::random(n + 4, n, rng);
  la::Matrix a(n, n);
  la::ata(b, a, 1);
  std::vector<val_t> evals(n);
  la::Matrix evecs(n, n);
  for (auto _ : state) {
    la::symmetric_eigen(a, evals, evecs);
    benchmark::DoNotOptimize(evals.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(64)->Arg(128);

void BM_CsfBuild(benchmark::State& state) {
  const SparseTensor base = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 8});
  for (auto _ : state) {
    SparseTensor work = base;
    const CsfSet set(work, CsfPolicy::kTwoMode, 1);
    benchmark::DoNotOptimize(set.memory_bytes());
  }
}
BENCHMARK(BM_CsfBuild);

}  // namespace

BENCHMARK_MAIN();
