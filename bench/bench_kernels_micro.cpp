/// \file bench_kernels_micro.cpp
/// \brief Microbenchmarks for the individual kernels underlying the
///        paper's routines: syrk (Mat A^TA), Cholesky solve (Inverse),
///        column normalization (Mat norm), the MTTKRP inner loop under
///        each row-access policy, the rank-specialized SIMD primitives
///        (la/kernels.hpp) vs their generic runtime-rank twins, sorting,
///        and the lock acquire/release fast path.
///
/// Built against google-benchmark when the package is present
/// (SPTD_HAVE_GBENCH); otherwise a bench_common-style WallTimer harness
/// runs the same cases with auto-scaled repetitions, so the kernels have
/// a microbenchmark everywhere.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sptd.hpp"

#if SPTD_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace sptd;

la::Matrix random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return la::Matrix::random(rows, cols, rng);
}

// ------------------------------------------------------------------
// Shared fixtures for the rank-specialized primitive comparisons.
// ------------------------------------------------------------------

/// Aligned, padded operand rows for the length-R primitives.
struct PrimitiveFixture {
  explicit PrimitiveFixture(idx_t rank)
      : rank_(rank), m_(random_matrix(3, rank, 21)) {}

  val_t* dst() { return m_.row_ptr(0); }
  const val_t* a() const { return m_.row_ptr(1); }
  const val_t* b() const { return m_.row_ptr(2); }
  idx_t rank() const { return rank_; }

 private:
  idx_t rank_;
  la::Matrix m_;
};

/// One fixed-vs-generic axpy/hadamard pass over the fixture (the MTTKRP
/// leaf arithmetic); templated so each width gets its own instantiation.
template <idx_t R>
void primitive_pass_fixed(PrimitiveFixture& fx) {
  la::kern::axpy_r<R>(fx.dst(), fx.a(), val_t{1.0000001});
  la::kern::hadamard_accum_r<R>(fx.dst(), fx.a(), fx.b());
  la::kern::scale_r<R>(fx.dst(), fx.a(), val_t{0.9999999});
}

inline void primitive_pass_generic(PrimitiveFixture& fx) {
  la::kern::axpy(fx.dst(), fx.a(), val_t{1.0000001}, fx.rank());
  la::kern::hadamard_accum(fx.dst(), fx.a(), fx.b(), fx.rank());
  la::kern::scale(fx.dst(), fx.a(), val_t{0.9999999}, fx.rank());
}

/// MTTKRP mode-sweep fixture: one plan per (row access, kernels) pair.
struct MttkrpFixture {
  SparseTensor x;
  std::vector<la::Matrix> factors;
  CsfSet set;
  idx_t rank;

  MttkrpFixture(idx_t rank_, std::uint64_t seed)
      : x(generate_synthetic({.dims = {300, 200, 400}, .nnz = 100000,
                              .seed = seed, .zipf_exponent = 0.5})),
        set(x, CsfPolicy::kTwoMode, 1), rank(rank_) {
    Rng rng(seed + 1);
    for (int m = 0; m < 3; ++m) {
      factors.push_back(la::Matrix::random(x.dim(m), rank, rng));
    }
  }
};

void run_mttkrp_sweep(MttkrpFixture& fx, MttkrpPlan& plan,
                      std::vector<la::Matrix>& outs) {
  for (int m = 0; m < 3; ++m) {
    plan.execute(fx.factors, m, outs[static_cast<std::size_t>(m)]);
  }
}

std::vector<la::Matrix> make_outputs(const MttkrpFixture& fx) {
  std::vector<la::Matrix> outs;
  for (int m = 0; m < 3; ++m) {
    outs.emplace_back(fx.x.dim(m), fx.rank);
  }
  return outs;
}

}  // namespace

#if SPTD_HAVE_GBENCH

// =====================================================================
// google-benchmark harness
// =====================================================================

namespace {

void BM_Ata(benchmark::State& state) {
  const auto rows = static_cast<idx_t>(state.range(0));
  const la::Matrix a = random_matrix(rows, 35, 1);
  la::Matrix out(35, 35);
  for (auto _ : state) {
    la::ata(a, out, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Ata)->Arg(1000)->Arg(10000);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<idx_t>(state.range(0));
  la::Matrix a = random_matrix(n + 4, n, 2);
  la::Matrix spd(n, n);
  la::ata(a, spd, 1);
  for (idx_t i = 0; i < n; ++i) {
    spd(i, i) += n;
  }
  la::Matrix rhs = random_matrix(1000, n, 3);
  for (auto _ : state) {
    la::Matrix m = rhs;
    la::solve_normal_equations(spd, m, 1);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(35);

void BM_NormalizeColumns(benchmark::State& state) {
  la::Matrix a = random_matrix(static_cast<idx_t>(state.range(0)), 35, 4);
  std::vector<val_t> lambda(35);
  const auto which =
      state.range(1) == 0 ? la::MatNorm::kTwo : la::MatNorm::kMax;
  for (auto _ : state) {
    la::normalize_columns(a, lambda, which, 1);
    benchmark::DoNotOptimize(lambda.data());
  }
}
BENCHMARK(BM_NormalizeColumns)->Args({10000, 0})->Args({10000, 1});

void BM_MttkrpRowAccess(benchmark::State& state) {
  MttkrpFixture fx(35, 5);
  MttkrpOptions mo;
  mo.nthreads = 1;
  mo.row_access = static_cast<RowAccess>(state.range(0));
  MttkrpPlan plan(fx.set, fx.rank, mo);
  auto outs = make_outputs(fx);
  for (auto _ : state) {
    run_mttkrp_sweep(fx, plan, outs);
    benchmark::DoNotOptimize(outs[0].data());
  }
  state.SetLabel(row_access_name(mo.row_access));
  state.SetItemsProcessed(state.iterations() * 100000 * 3);
}
BENCHMARK(BM_MttkrpRowAccess)
    ->Arg(static_cast<int>(RowAccess::kSlice))
    ->Arg(static_cast<int>(RowAccess::kIndex2D))
    ->Arg(static_cast<int>(RowAccess::kPointer));

void BM_MttkrpKernelWidth(benchmark::State& state) {
  const auto rank = static_cast<idx_t>(state.range(0));
  const bool fixed = state.range(1) != 0;
  MttkrpFixture fx(rank, 5);
  MttkrpOptions mo;
  mo.nthreads = 1;
  mo.use_fixed_kernels = fixed;
  MttkrpPlan plan(fx.set, fx.rank, mo);
  auto outs = make_outputs(fx);
  for (auto _ : state) {
    run_mttkrp_sweep(fx, plan, outs);
    benchmark::DoNotOptimize(outs[0].data());
  }
  state.SetLabel("rank" + std::to_string(rank) +
                 (fixed ? "/fixed" : "/generic") + "/width" +
                 std::to_string(plan.kernel_width()));
  state.SetItemsProcessed(state.iterations() * 100000 * 3);
}
BENCHMARK(BM_MttkrpKernelWidth)
    ->Args({16, 0})->Args({16, 1})
    ->Args({32, 0})->Args({32, 1});

template <idx_t R>
void BM_PrimitivesFixed(benchmark::State& state) {
  PrimitiveFixture fx(R);
  for (auto _ : state) {
    primitive_pass_fixed<R>(fx);
    benchmark::DoNotOptimize(fx.dst());
  }
  state.SetLabel("axpy+hadamard+scale r" + std::to_string(R));
}
BENCHMARK_TEMPLATE(BM_PrimitivesFixed, 8);
BENCHMARK_TEMPLATE(BM_PrimitivesFixed, 16);
BENCHMARK_TEMPLATE(BM_PrimitivesFixed, 32);

void BM_PrimitivesGeneric(benchmark::State& state) {
  PrimitiveFixture fx(static_cast<idx_t>(state.range(0)));
  for (auto _ : state) {
    primitive_pass_generic(fx);
    benchmark::DoNotOptimize(fx.dst());
  }
}
BENCHMARK(BM_PrimitivesGeneric)->Arg(8)->Arg(16)->Arg(32);

void BM_SortVariant(benchmark::State& state) {
  const SparseTensor base = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 7,
       .zipf_exponent = 0.5});
  const auto variant = static_cast<SortVariant>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SparseTensor work = base;
    state.ResumeTiming();
    sort_tensor(work, 0, 1, variant);
    benchmark::DoNotOptimize(work.vals().data());
  }
  state.SetLabel(sort_variant_name(variant));
}
BENCHMARK(BM_SortVariant)
    ->Arg(static_cast<int>(SortVariant::kInitial))
    ->Arg(static_cast<int>(SortVariant::kArrayOpt))
    ->Arg(static_cast<int>(SortVariant::kSlicesOpt))
    ->Arg(static_cast<int>(SortVariant::kAllOpts));

void BM_LockUncontended(benchmark::State& state) {
  AnyMutexPool pool(static_cast<LockKind>(state.range(0)));
  idx_t id = 0;
  for (auto _ : state) {
    pool.lock(id);
    pool.unlock(id);
    id = (id + 1) & 1023;
  }
  state.SetLabel(lock_kind_name(static_cast<LockKind>(state.range(0))));
}
BENCHMARK(BM_LockUncontended)
    ->Arg(static_cast<int>(LockKind::kSync))
    ->Arg(static_cast<int>(LockKind::kAtomic))
    ->Arg(static_cast<int>(LockKind::kFifoSync))
    ->Arg(static_cast<int>(LockKind::kOmp));

void BM_Ttmc(benchmark::State& state) {
  SparseTensor x = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 9});
  const auto core = static_cast<idx_t>(state.range(0));
  Rng rng(10);
  std::vector<la::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(la::Matrix::random(x.dim(m), core, rng));
  }
  la::Matrix out(x.dim(0), core * core);
  for (auto _ : state) {
    ttmc(x, factors, 0, out, 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_Ttmc)->Arg(4)->Arg(8)->Arg(16);

void BM_SymmetricEigen(benchmark::State& state) {
  const auto n = static_cast<idx_t>(state.range(0));
  Rng rng(11);
  const la::Matrix b = la::Matrix::random(n + 4, n, rng);
  la::Matrix a(n, n);
  la::ata(b, a, 1);
  std::vector<val_t> evals(n);
  la::Matrix evecs(n, n);
  for (auto _ : state) {
    la::symmetric_eigen(a, evals, evecs);
    benchmark::DoNotOptimize(evals.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(64)->Arg(128);

void BM_CsfBuild(benchmark::State& state) {
  const SparseTensor base = generate_synthetic(
      {.dims = {300, 200, 400}, .nnz = 100000, .seed = 8});
  for (auto _ : state) {
    SparseTensor work = base;
    const CsfSet set(work, CsfPolicy::kTwoMode, 1);
    benchmark::DoNotOptimize(set.memory_bytes());
  }
}
BENCHMARK(BM_CsfBuild);

}  // namespace

BENCHMARK_MAIN();

#else  // !SPTD_HAVE_GBENCH

// =====================================================================
// Fallback harness: WallTimer + auto-scaled repetitions (the shape
// bench_common's figure harnesses use), so the kernels keep a
// microbenchmark where google-benchmark is not installed.
// =====================================================================

namespace {

/// Keeps the optimizer from deleting a benchmarked computation.
inline void do_not_optimize(const void* p) {
  asm volatile("" : : "g"(p) : "memory");
}

/// Times op() with repetitions auto-scaled to ~200ms and prints ns/op.
void run_case(const std::string& name, const std::function<void()>& op) {
  op();  // warm (page faults, code paths)
  // Calibrate.
  WallTimer probe;
  probe.start();
  long calib = 0;
  while (probe.seconds() < 0.01) {
    op();
    ++calib;
  }
  probe.stop();
  const long reps =
      std::max<long>(1, static_cast<long>(0.2 * calib / probe.seconds()));
  WallTimer timer;
  timer.start();
  for (long i = 0; i < reps; ++i) {
    op();
  }
  timer.stop();
  std::printf("%-44s %12ld reps %14.1f ns/op\n", name.c_str(), reps,
              timer.seconds() / static_cast<double>(reps) * 1e9);
  std::fflush(stdout);
}

template <idx_t R>
void run_primitive_cases() {
  PrimitiveFixture fixed_fx(R);
  run_case("primitives/fixed/r" + std::to_string(R),
           [&] { primitive_pass_fixed<R>(fixed_fx);
                 do_not_optimize(fixed_fx.dst()); });
  PrimitiveFixture gen_fx(R);
  run_case("primitives/generic/r" + std::to_string(R),
           [&] { primitive_pass_generic(gen_fx);
                 do_not_optimize(gen_fx.dst()); });
}

}  // namespace

int main() {
  init_parallel_runtime();
  std::printf("# bench_kernels_micro (fallback harness; install "
              "google-benchmark for the full one)\n");

  {
    const la::Matrix a = random_matrix(10000, 35, 1);
    la::Matrix out(35, 35);
    run_case("ata/10000x35",
             [&] { la::ata(a, out, 1); do_not_optimize(out.data()); });
  }

  {
    const idx_t n = 35;
    la::Matrix a = random_matrix(n + 4, n, 2);
    la::Matrix spd(n, n);
    la::ata(a, spd, 1);
    for (idx_t i = 0; i < n; ++i) {
      spd(i, i) += n;
    }
    const la::Matrix rhs = random_matrix(1000, n, 3);
    run_case("cholesky_solve/35", [&] {
      la::Matrix m = rhs;
      la::solve_normal_equations(spd, m, 1);
      do_not_optimize(m.data());
    });
  }

  {
    la::Matrix a = random_matrix(10000, 35, 4);
    std::vector<val_t> lambda(35);
    run_case("normalize_columns/two", [&] {
      la::normalize_columns(a, lambda, la::MatNorm::kTwo, 1);
      do_not_optimize(lambda.data());
    });
  }

  run_primitive_cases<8>();
  run_primitive_cases<16>();
  run_primitive_cases<32>();

  for (const auto ra :
       {RowAccess::kSlice, RowAccess::kIndex2D, RowAccess::kPointer}) {
    MttkrpFixture fx(35, 5);
    MttkrpOptions mo;
    mo.nthreads = 1;
    mo.row_access = ra;
    MttkrpPlan plan(fx.set, fx.rank, mo);
    auto outs = make_outputs(fx);
    run_case(std::string("mttkrp_sweep/") + row_access_name(ra), [&] {
      run_mttkrp_sweep(fx, plan, outs);
      do_not_optimize(outs[0].data());
    });
  }

  for (const idx_t rank : {idx_t{16}, idx_t{32}}) {
    for (const bool fixed : {false, true}) {
      MttkrpFixture fx(rank, 5);
      MttkrpOptions mo;
      mo.nthreads = 1;
      mo.use_fixed_kernels = fixed;
      MttkrpPlan plan(fx.set, fx.rank, mo);
      auto outs = make_outputs(fx);
      run_case("mttkrp_sweep/rank" + std::to_string(rank) +
                   (fixed ? "/fixed/width" : "/generic/width") +
                   std::to_string(plan.kernel_width()),
               [&] {
                 run_mttkrp_sweep(fx, plan, outs);
                 do_not_optimize(outs[0].data());
               });
    }
  }

  return 0;
}

#endif  // SPTD_HAVE_GBENCH
