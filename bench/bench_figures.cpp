#include "bench_figures.hpp"

#include <cstdio>

#include "bench_common.hpp"

namespace sptd::bench {

int run_rowaccess_figure(const char* fig_label, const char* default_preset,
                         const char* default_scale, int argc, char** argv) {
  Options cli(fig_label,
              "MTTKRP runtime under slice / 2D-index / pointer row access "
              "(paper Figures 2-3)");
  add_common_flags(cli, default_preset, default_scale, "5", "1,2,4,8");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== %s: MTTKRP row-access ablation ==\n", fig_label);
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  std::printf("# seconds for %d MTTKRP mode sweeps (all modes each)\n",
              iters);
  print_series_header(threads);
  for (const auto ra :
       {RowAccess::kSlice, RowAccess::kIndex2D, RowAccess::kPointer}) {
    std::vector<double> seconds;
    std::string strategies;
    for (const int t : threads) {
      MttkrpOptions mo;
      mo.nthreads = t;
      mo.lock_kind = LockKind::kAtomic;  // the port's optimized locks
      apply_kernel_flags(cli, mo);
      mo.row_access = ra;
      // Figures 2-3 compare row-access idioms; keep the arithmetic
      // identical across the series so the gap is the idiom's cost
      // (kernel_width below records that the generic loops ran).
      mo.use_fixed_kernels = false;
      std::string* strat = seconds.empty() ? &strategies : nullptr;
      seconds.push_back(
          time_mttkrp_sweeps(set, factors, rank, mo, iters, strat));
      emit_json_record(cli, fig_label,
                       JsonRecord()
                           .field("row_access", row_access_name(ra))
                           .field("kernel_width",
                                  static_cast<std::int64_t>(
                                      selected_kernel_width(rank, mo)))
                           .field("threads", std::int64_t{t})
                           .field("csf_bytes",
                                  static_cast<std::int64_t>(
                                      set.memory_bytes()))
                           .field("value_bytes",
                                  static_cast<std::int64_t>(
                                      set.value_bytes(mo.precision)))
                           .field("seconds", seconds.back()));
    }
    print_series(row_access_name(ra), threads, seconds);
  }
  return 0;
}

int run_routines_figure(const char* fig_label, const char* default_preset,
                        const char* default_scale,
                        const char* default_threads, int argc, char** argv) {
  Options cli(fig_label,
              "Per-routine CP-ALS runtimes, reference C vs optimized port "
              "(paper Figures 5-8)");
  add_common_flags(cli, default_preset, default_scale, "5",
                   default_threads);
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== %s: per-routine CP-ALS runtimes ==\n", fig_label);
  const SparseTensor x = make_dataset(cli.get_string("preset"),
                                      cli.get_double("scale"),
                                      static_cast<std::uint64_t>(
                                          cli.get_int("seed")));
  const auto threads = cli.get_int_list("threads-list");
  const int trials = static_cast<int>(cli.get_int("trials"));

  const std::vector<std::string> impls = {"c", "chapel-optimize"};
  for (const int t : threads) {
    std::printf("# %d thread(s), %lld CP-ALS iterations, rank %lld\n", t,
                static_cast<long long>(cli.get_int("iters")),
                static_cast<long long>(cli.get_int("rank")));
    print_routine_header("impl");
    CpalsOptions base;
    base.rank = static_cast<idx_t>(cli.get_int("rank"));
    base.max_iterations = static_cast<int>(cli.get_int("iters"));
    base.tolerance = 0.0;
    base.nthreads = t;
    apply_kernel_flags(cli, base);
    std::vector<std::uint64_t> steals;
    std::uint64_t csf_bytes = 0;
    std::uint64_t value_bytes = 0;
    std::vector<double> fits;
    std::vector<ResilienceCounters> resilience;
    const auto results =
        run_impls_fair(x, base, impls, trials, &steals, &csf_bytes,
                       &value_bytes, &fits, &resilience);
    for (std::size_t i = 0; i < impls.size(); ++i) {
      print_routine_row(impls[i].c_str(), results[i]);
      JsonRecord rec;
      rec.field("impl", impls[i])
          .field("threads", std::int64_t{t})
          .field("steals", static_cast<std::int64_t>(steals[i]))
          .field("csf_bytes", static_cast<std::int64_t>(csf_bytes))
          .field("value_bytes", static_cast<std::int64_t>(value_bytes))
          .field("fit", fits[i]);
      for (int r = 0; r < kNumRoutines; ++r) {
        rec.field(routine_name(static_cast<Routine>(r)),
                  results[i].seconds(static_cast<Routine>(r)));
      }
      rec.field("total_seconds", results[i].total_seconds());
      // Resilience activity: retries/rollbacks are event counts, the
      // checkpoint cost fields carry the best-trial serialization overhead
      // the ci.sh fig5 gate bounds at 5% of total_seconds.
      rec.field("retries",
                static_cast<std::int64_t>(resilience[i].retries))
          .field("rollbacks",
                 static_cast<std::int64_t>(resilience[i].rollbacks))
          .field("checkpoint_bytes",
                 static_cast<std::int64_t>(resilience[i].checkpoint_bytes))
          .field("checkpoint_time", resilience[i].checkpoint_seconds);
      emit_json_record(cli, fig_label, rec);
    }
  }
  return 0;
}

int run_scaling_figure(const char* fig_label, const char* default_preset,
                       const char* default_scale, int argc, char** argv) {
  Options cli(fig_label,
              "MTTKRP scaling: C vs Chapel-initial vs Chapel-optimized "
              "(paper Figures 9-10)");
  add_common_flags(cli, default_preset, default_scale, "5", "1,2,4,8");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== %s: MTTKRP scaling across implementations ==\n",
              fig_label);
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  std::printf("# seconds for %d MTTKRP mode sweeps (all modes each)\n",
              iters);
  print_series_header(threads);
  for (const auto& variant : impl_variants()) {
    std::vector<double> seconds;
    for (const int t : threads) {
      MttkrpOptions mo;
      mo.nthreads = t;
      mo.lock_kind = variant.lock_kind;
      apply_kernel_flags(cli, mo);
      mo.row_access = variant.row_access;
      seconds.push_back(time_mttkrp_sweeps(set, factors, rank, mo, iters));
      emit_json_record(cli, fig_label,
                       JsonRecord()
                           .field("impl", variant.name)
                           .field("kernel_width",
                                  static_cast<std::int64_t>(
                                      selected_kernel_width(rank, mo)))
                           .field("threads", std::int64_t{t})
                           .field("csf_bytes",
                                  static_cast<std::int64_t>(
                                      set.memory_bytes()))
                           .field("value_bytes",
                                  static_cast<std::int64_t>(
                                      set.value_bytes(mo.precision)))
                           .field("seconds", seconds.back()));
    }
    print_series(variant.name, threads, seconds);
  }
  return 0;
}

}  // namespace sptd::bench
