/// \file bench_ablation_distgrid.cpp
/// \brief Ablation for the medium-grained distributed CP-ALS (the paper's
///        future work): locale-grid shape vs communication volume and
///        nonzero balance. Reproduces the medium-grained paper's central
///        trade-off — for a fixed locale count, an N-dimensional grid
///        moves far fewer factor-row bytes per iteration than a 1-D
///        decomposition, at equal mathematics (fit is checked equal).
///
/// `--transport sim` (the default) reports the modeled volume only;
/// `--transport shm` runs real forked locales over the shared-memory ring
/// and reports the measured bytes/seconds next to the model. The fit is
/// transport-independent (bitwise at one thread per locale), so the same
/// baseline records pair across transports by the `transport` identity
/// field.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_distgrid",
              "locale grid shape vs communication volume");
  add_common_flags(cli, "yelp", "0.005", "5", "1");
  cli.add("transport", "sim",
          "dist communication backend: sim (in-process model) | shm "
          "(fork-per-locale, measured bytes) | mpi");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  const TransportKind transport =
      parse_transport(cli.get_string("transport"));
  if (transport != TransportKind::kShm) {
    // The shm launcher forks per locale; a live thread pool does not
    // survive fork, so the runtime only spins up for in-process runs.
    init_parallel_runtime();
  }

  std::printf("== Ablation: distributed locale-grid shape (8 locales) ==\n");
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));

  const dims_t grids[] = {
      {8, 1, 1}, {1, 8, 1}, {1, 1, 8}, {4, 2, 1}, {2, 2, 2},
  };
  std::printf("# rank %u, %d iterations, %s transport; "
              "volume = total bytes moved\n",
              static_cast<unsigned>(rank), iters,
              transport_name(transport));
  std::printf("%-10s %12s %12s %12s %10s\n", "grid", "comm model",
              "measured", "max/avg nnz", "final fit");
  for (const auto& grid : grids) {
    DistOptions opts;
    opts.grid = grid;
    opts.rank = rank;
    opts.max_iterations = iters;
    opts.transport = transport;
    apply_kernel_flags(cli, opts);
    const DistResult r = dist_cp_als(x, opts);
    nnz_t max_nnz = 0;
    for (const nnz_t n : r.locale_nnz) {
      max_nnz = std::max(max_nnz, n);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%ux%ux%u",
                  static_cast<unsigned>(grid[0]),
                  static_cast<unsigned>(grid[1]),
                  static_cast<unsigned>(grid[2]));
    std::printf("%-10s %12s %12s %11.2fx %10.4f\n", label,
                format_bytes(r.comm.total()).c_str(),
                format_bytes(r.comm_measured.total_bytes()).c_str(),
                static_cast<double>(max_nnz) * r.locale_nnz.size() /
                    static_cast<double>(x.nnz()),
                r.fit_history.back());
    std::fflush(stdout);
    emit_json_record(
        cli, "ablation_distgrid",
        bench::JsonRecord()
            .field("grid", label)
            .field("transport", transport_name(transport))
            .field("comm_bytes",
                   static_cast<std::int64_t>(r.comm.total()))
            .field("comm_bytes_measured",
                   static_cast<std::int64_t>(r.comm_measured.total_bytes()))
            .field("comm_seconds_measured",
                   r.comm_measured.reduce_seconds +
                       r.comm_measured.broadcast_seconds)
            .field("fit", r.fit_history.back()));
  }
  return 0;
}
