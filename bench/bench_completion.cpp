/// \file bench_completion.cpp
/// \brief Completion-solver comparison: ALS vs SGD vs CCD++ on a noisy
///        low-rank tensor shaped like a Table I preset.
///
/// Unlike the figure harnesses (which replay the paper's MTTKRP-bound
/// experiments), this bench exercises the completion subsystem end to
/// end: split a synthetic ratings tensor, run each solver over the thread
/// sweep, and report wall time plus train/holdout RMSE. With --json each
/// (alg, threads) measurement appends one record carrying the `alg`
/// field, which is part of the record's identity in
/// tools/bench_compare.py — so solver runs gate independently — while
/// iterations/best_iteration ride as counters and the RMSE fields as
/// quality metrics.
///
///   $ ./bench_completion --preset yelp --scale 0.01 --alg-list als,sgd,ccd
///
/// Paper-scale runs: --scale 1.0 --iters 50 --threads-list 1,2,4,8,16,32.

#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_completion",
              "tensor-completion solver comparison (als|sgd|ccd)");
  add_common_flags(cli, "yelp", "0.01", "10", "1,2");
  cli.add("alg-list", "als,sgd,ccd", "solvers to compare");
  cli.add("holdout", "0.2", "fraction held out for validation");
  cli.add("reg", "1e-3", "regularization");
  cli.add("lr", "0.02", "SGD learning rate");
  cli.add("decay", "0.01", "SGD learning-rate decay");
  cli.add("data-rank", "4", "true rank of the synthetic tensor");
  cli.add("noise", "0.05", "observation noise level");
  if (!cli.parse(argc, argv)) {
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto cfg =
      find_preset(cli.get_string("preset"))
          .scaled(cli.get_double("scale"), seed);
  std::printf("# dataset %s @ scale %g (low-rank content, rank %lld, "
              "noise %g): %s, %llu nnz\n",
              cli.get_string("preset").c_str(), cli.get_double("scale"),
              static_cast<long long>(cli.get_int("data-rank")),
              cli.get_double("noise"), format_dims(cfg.dims).c_str(),
              static_cast<unsigned long long>(cfg.nnz));
  const SparseTensor full = generate_low_rank(
      cfg.dims, static_cast<idx_t>(cli.get_int("data-rank")), cfg.nnz,
      cli.get_double("noise"), seed);
  const auto [train, test] =
      split_train_test(full, cli.get_double("holdout"), seed + 1);
  std::printf("# train %llu nnz, holdout %llu nnz\n",
              static_cast<unsigned long long>(train.nnz()),
              static_cast<unsigned long long>(test.nnz()));

  CompletionOptions base;
  base.rank = static_cast<idx_t>(cli.get_int("rank"));
  base.max_iterations = static_cast<int>(cli.get_int("iters"));
  base.tolerance = 0.0;  // fixed work per measurement
  base.regularization = cli.get_double("reg");
  base.learn_rate = cli.get_double("lr");
  base.decay = cli.get_double("decay");
  base.seed = seed + 2;
  base.schedule = schedule_flag(cli);
  base.chunk_target = chunk_flag(cli);
  base.use_fixed_kernels = cli.get_string("kernels") == "fixed";

  std::vector<std::string> algs;
  {
    const std::string list = cli.get_string("alg-list");
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      algs.push_back(list.substr(pos, comma - pos));
      pos = comma + 1;
    }
  }
  const std::vector<int> threads_list = cli.get_int_list("threads-list");
  const int trials = static_cast<int>(cli.get_int("trials"));

  std::printf("%-6s %8s %10s %12s %12s %6s\n", "alg", "threads",
              "seconds", "train RMSE", "val RMSE", "best");
  for (const std::string& alg_name : algs) {
    CompletionOptions opts = base;
    opts.algorithm = parse_completion_algorithm(alg_name);
    {
      // Untimed warm-up (page faults, allocator growth).
      CompletionOptions warm = opts;
      warm.max_iterations = 1;
      warm.nthreads = threads_list.front();
      (void)complete_tensor(train, &test, warm);
    }
    for (const int nthreads : threads_list) {
      opts.nthreads = nthreads;
      const std::uint64_t steals_before = work_steal_count();
      WallTimer timer;
      timer.start();
      CompletionResult last;
      for (int trial = 0; trial < trials; ++trial) {
        last = complete_tensor(train, &test, opts);
      }
      timer.stop();
      const double seconds = timer.seconds() / trials;
      // The slice-aware split can hand back an empty holdout on
      // degenerate inputs; 0 then reads as "no validation" (and
      // bench_compare skips ratio checks on non-positive baselines).
      const double val =
          last.val_rmse.empty() ? 0.0 : last.val_rmse.back();
      std::printf("%-6s %8d %10.4f %12.4f %12.4f %6d\n", alg_name.c_str(),
                  nthreads, seconds, last.train_rmse.back(), val,
                  last.best_iteration);
      std::fflush(stdout);

      JsonRecord record;
      record.field("alg", alg_name)
          .field("threads", static_cast<std::int64_t>(nthreads))
          .field("steals",
                 static_cast<std::int64_t>(work_steal_count() -
                                           steals_before))
          .field("seconds", seconds)
          .field("train_rmse", last.train_rmse.back())
          .field("val_rmse", val)
          .field("iterations", static_cast<std::int64_t>(last.iterations))
          .field("best_iteration",
                 static_cast<std::int64_t>(last.best_iteration));
      emit_json_record(cli, "completion", std::move(record));
    }
  }
  return 0;
}
