#pragma once
/// \file bench_figures.hpp
/// \brief Reusable figure runners. The paper repeats three figure shapes
///        across datasets (row-access ablation, per-routine bars, MTTKRP
///        scaling); each bench main binds one figure's defaults and calls
///        the matching runner.

namespace sptd::bench {

/// Figures 2 & 3: MTTKRP runtime for the three row-access policies
/// (slice / 2D-index / pointer) across a thread sweep.
int run_rowaccess_figure(const char* fig_label, const char* default_preset,
                         const char* default_scale, int argc, char** argv);

/// Figures 5-8: per-routine CP-ALS runtimes, reference C paths vs the
/// optimized port, at one thread count.
int run_routines_figure(const char* fig_label, const char* default_preset,
                        const char* default_scale,
                        const char* default_threads, int argc, char** argv);

/// Figures 9 & 10: MTTKRP runtime of C vs Chapel-initial vs
/// Chapel-optimized across a thread sweep.
int run_scaling_figure(const char* fig_label, const char* default_preset,
                       const char* default_scale, int argc, char** argv);

}  // namespace sptd::bench
