/// \file bench_fig3_mttkrp_rowaccess.cpp
/// \brief Reproduces **Figure 3** (Chapel MTTKRP runtime, matrix access
///        optimizations, NELL-2): slice vs 2D-index vs pointer row access
///        on the larger, lock-free dataset (paper: 17x slice -> 2D gain).
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --iters 20.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_rowaccess_figure("Figure 3", "nell-2", "0.01",
                                           argc, argv);
}
