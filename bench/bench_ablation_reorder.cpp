/// \file bench_ablation_reorder.cpp
/// \brief Ablation: slice-relabeling locality. SPLATT offers graph
///        reorderings to improve MTTKRP cache behaviour; this harness
///        measures the mechanism's two poles on a skewed dataset:
///        frequency ordering (hot slices packed together at low ids) vs
///        random relabeling (locality destroyed) vs the generator's
///        natural order.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_reorder", "slice reordering vs MTTKRP time");
  add_common_flags(cli, "yelp", "0.01", "5", "1");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: slice relabeling and MTTKRP locality ==\n");
  const auto preset = find_preset(cli.get_string("preset"));
  auto cfg = preset.scaled(cli.get_double("scale"),
                           static_cast<std::uint64_t>(cli.get_int("seed")));
  cfg.zipf_exponent = 1.0;  // strong skew makes ordering matter
  SparseTensor base = generate_synthetic(cfg);
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();

  std::printf("# %s, zipf 1.0, %d thread(s), %d MTTKRP sweeps\n",
              format_dims(base.dims()).c_str(), nthreads, iters);
  const char* labels[] = {"natural", "frequency", "random"};
  for (int which = 0; which < 3; ++which) {
    SparseTensor t = base;
    if (which == 1) {
      std::vector<std::vector<idx_t>> maps;
      for (int m = 0; m < t.order(); ++m) {
        maps.push_back(frequency_order(t, m));
      }
      relabel(t, maps);
    } else if (which == 2) {
      shuffle_all_modes(t, 99);
    }
    const auto factors = make_factors(t, rank, 7);
    const CsfSet set(t, CsfPolicy::kTwoMode, nthreads, nullptr,
                     SortVariant::kAllOpts, csf_layout_flag(cli));
    MttkrpOptions mo;
    mo.nthreads = nthreads;
    apply_kernel_flags(cli, mo);
    const double secs = time_mttkrp_sweeps(set, factors, rank, mo, iters);
    std::printf("  %-10s %10.4f s\n", labels[which], secs);
    emit_json_record(cli, "ablation_reorder",
                     bench::JsonRecord()
                         .field("reorder", labels[which])
                         .field("seconds", secs));
    std::fflush(stdout);
  }
  return 0;
}
