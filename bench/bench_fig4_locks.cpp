/// \file bench_fig4_locks.cpp
/// \brief Reproduces **Figure 4** (MTTKRP runtime, sync vs atomic vs
///        fifo-sync mutex pools, YELP): the lock-implementation study.
///
/// YELP's shape makes SPLATT's heuristic require locks beyond 2 threads
/// (Section V-D2); this harness forces the locked path at every thread
/// count so the lock cost is isolated, and sweeps the pool implementation:
///   sync       — parked waits (Chapel sync vars under Qthreads)
///   atomic     — test-and-set + yield (the paper's fix, Listing 6)
///   fifo-sync  — ticket spin lock (sync vars under the fifo layer)
///   omp        — omp_lock_t (the reference C code), for context
///
/// Expected shape: sync degrades sharply with threads; atomic and
/// fifo-sync stay close to omp (paper: 14.5x gain from sync -> atomic).
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --iters 20.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_fig4_locks",
              "Figure 4: mutex pool implementations on a lock-bound MTTKRP");
  add_common_flags(cli, "yelp", "0.01", "5", "1,2,4,8");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Figure 4: sync vs atomic vs fifo-sync locks (%s) ==\n",
              cli.get_string("preset").c_str());
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const auto rank = static_cast<idx_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const auto factors = make_factors(x, rank, 7);
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));
  const auto threads = cli.get_int_list("threads-list");

  std::printf("# seconds for %d MTTKRP mode sweeps; locks forced on "
              "non-root modes\n", iters);
  print_series_header(threads);
  for (const auto kind : {LockKind::kSync, LockKind::kAtomic,
                          LockKind::kFifoSync, LockKind::kOmp}) {
    std::vector<double> seconds;
    for (const int t : threads) {
      MttkrpOptions mo;
      mo.nthreads = t;
      mo.row_access = RowAccess::kPointer;
      mo.lock_kind = kind;
      mo.force_locks = true;
      apply_kernel_flags(cli, mo);
      seconds.push_back(time_mttkrp_sweeps(set, factors, rank, mo, iters));
      emit_json_record(cli, "Figure 4",
                       bench::JsonRecord()
                           .field("lock", lock_kind_name(kind))
                           .field("threads", std::int64_t{t})
                           .field("seconds", seconds.back()));
    }
    print_series(lock_kind_name(kind), threads, seconds);
  }
  return 0;
}
