/// \file bench_fig9_mttkrp_scaling.cpp
/// \brief Reproduces **Figure 9** (MTTKRP runtime vs threads, YELP):
///        C vs Chapel-initial vs Chapel-optimized.
/// Expected shape: chapel-initial an order of magnitude above the other
/// two and scaling poorly (sync locks beyond 2 threads); chapel-optimize
/// tracking C closely (paper: 83-93%).
/// Paper-scale: --scale 1.0 --threads-list 1,2,4,8,16,32 --iters 20.

#include "bench_figures.hpp"

int main(int argc, char** argv) {
  return sptd::bench::run_scaling_figure("Figure 9", "yelp", "0.01", argc,
                                         argv);
}
