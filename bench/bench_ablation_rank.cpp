/// \file bench_ablation_rank.cpp
/// \brief Ablation: decomposition rank. The paper fixes R = 35; this
///        harness sweeps R and reports MTTKRP time per sweep and the
///        slice-vs-pointer row-access gap as a function of R. The gap
///        shrinks as R grows (slice-descriptor setup amortizes over more
///        arithmetic per row) — the regime where the paper's YELP/NELL-2
///        numbers live is small-R, where the overhead dominates.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sptd;
  using namespace sptd::bench;

  Options cli("bench_ablation_rank", "decomposition-rank sweep");
  add_common_flags(cli, "yelp", "0.01", "5", "1");
  cli.add("rank-list", "8,16,35,64,128", "ranks to sweep");
  if (!cli.parse(argc, argv)) {
    return 0;
  }
  init_parallel_runtime();

  std::printf("== Ablation: rank sweep ==\n");
  SparseTensor x = make_dataset(cli.get_string("preset"),
                                cli.get_double("scale"),
                                static_cast<std::uint64_t>(
                                    cli.get_int("seed")));
  const int iters = static_cast<int>(cli.get_int("iters"));
  const int nthreads = cli.get_int_list("threads-list").front();
  const CsfSet set(x, CsfPolicy::kTwoMode, hardware_threads(), nullptr,
                   SortVariant::kAllOpts, csf_layout_flag(cli));

  std::printf("# %d thread(s); seconds for %d MTTKRP sweeps\n", nthreads,
              iters);
  std::printf("%8s %12s %12s %12s\n", "rank", "pointer", "slice",
              "slice/ptr");
  for (const int rank_i : cli.get_int_list("rank-list")) {
    const auto rank = static_cast<idx_t>(rank_i);
    const auto factors = make_factors(x, rank, 7);
    double secs[2] = {0, 0};
    int which = 0;
    for (const auto ra : {RowAccess::kPointer, RowAccess::kSlice}) {
      MttkrpOptions mo;
      mo.nthreads = nthreads;
      apply_kernel_flags(cli, mo);
      mo.row_access = ra;
      // This ablation isolates the row-access idiom: rank specialization
      // would otherwise accelerate only the pointer column at ranks with
      // a fixed-width kernel and misattribute the gap to the idiom.
      // Measure the specialization win with --kernels A/B on the figure
      // harnesses instead.
      mo.use_fixed_kernels = false;
      secs[which++] = time_mttkrp_sweeps(set, factors, rank, mo, iters);
    }
    std::printf("%8u %12.4f %12.4f %12.2fx\n", static_cast<unsigned>(rank),
                secs[0], secs[1], secs[1] / secs[0]);
    std::fflush(stdout);
  }
  return 0;
}
