#!/usr/bin/env python3
"""Repo-contract linter: greppable rules CI enforces on every commit.

The contracts in ROADMAP.md that can be stated as "this pattern must not
appear outside that directory" are checked here, so violating one fails
CI instead of waiting for a reviewer to remember it. The rules:

  wide-accessor         .fids( / ->fids( / .fptr( / ->fptr( outside
                        src/csf/. The wide accessors throw on
                        narrow-width levels by contract; code outside
                        the CSF layer must go through the width-checked
                        visitors (with_fids/with_fptr) instead of
                        assuming the index stream is u64.
  omp-outside-parallel  omp_* runtime calls, `#pragma omp`, or direct
                        std::thread/std::jthread construction outside
                        src/parallel/. The parallel/ layer owns team
                        shape, first-touch ordering and schedule state;
                        a stray `#pragma omp parallel` elsewhere
                        bypasses init_parallel_runtime() and the
                        reset() contract, and a hand-rolled std::thread
                        elsewhere bypasses the backend seam
                        (parallel/backend.hpp) — the pool backend's
                        whole point is that library code never spawns
                        its own threads. `#pragma omp simd` is exempt:
                        it is a vectorization hint with no runtime
                        interaction. (Benches and tests may use raw
                        threads; the rule scans src/ only.)
  std-function-hot-path std::function in src/la/, src/mttkrp/, or
                        src/parallel/. A type-erased call in the kernel
                        hot path defeats inlining and allocates;
                        dispatch there is by template, function
                        pointer, or TeamBodyRef. The one sanctioned
                        use — parallel_region's cold-path overload —
                        carries an allow marker.
  unaligned-value-array std::vector<val_t> / std::vector<float> in the
                        hot directories (src/csf, src/la, src/mttkrp,
                        src/parallel, src/completion). Value streams and
                        accumulators there must be aligned_vector<> so
                        rows start on the 64-byte line the SIMD kernels
                        and first-touch policy assume.
  bench-field-registry  every .field("name" emitted by bench/ must
                        appear in one of tools/bench_compare.py's
                        registries (DEFAULT_METRICS,
                        DEFAULT_DEFICIT_METRICS, DEFAULT_COUNTERS,
                        KNOWN_IDENTITY_FIELDS). An unregistered field
                        silently becomes part of record identity; if it
                        varies run to run, the record never pairs with
                        its baseline and the gate checks nothing.

A violation a human has judged acceptable is waived at the site with a
marker comment on the same line or the line above:

    // sptd-lint: allow(rule-id) <reason>

Usage:
    tools/sptd_lint.py [--root DIR]   lint the tree (exit 1 on findings)
    tools/sptd_lint.py --self-test    run against tools/lint_fixtures/
                                      and verify every rule both fires
                                      and honors its allow marker
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

HOT_DIRS = ("src/csf", "src/la", "src/mttkrp", "src/parallel",
            "src/completion")

ALLOW_RE = re.compile(r"sptd-lint:\s*allow\(([a-z0-9-]+)\)")

REGISTRY_LISTS = ("DEFAULT_METRICS", "DEFAULT_DEFICIT_METRICS",
                  "DEFAULT_COUNTERS", "KNOWN_IDENTITY_FIELDS")


class Finding:
    def __init__(self, rule, path, lineno, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def iter_source_files(root, top):
    base = os.path.join(root, top)
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(CXX_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root)


def read_lines(root, rel):
    with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
        return f.read().splitlines()


def allowed(rule, lines, idx):
    """True when line idx or the line above carries an allow marker."""
    for probe in (idx, idx - 1):
        if probe >= 0:
            m = ALLOW_RE.search(lines[probe])
            if m and m.group(1) == rule:
                return True
    return False


def scan_pattern(root, rel, lines, rule, pattern, message, findings,
                 exempt=None):
    for idx, line in enumerate(lines):
        m = pattern.search(line)
        if not m:
            continue
        if exempt is not None and exempt.search(line):
            continue
        if allowed(rule, lines, idx):
            continue
        findings.append(Finding(rule, rel, idx + 1, message))


WIDE_ACCESSOR_RE = re.compile(r"(\.|->)f(ids|ptr)\s*\(")
OMP_RE = re.compile(r"\bomp_[a-z_]+\s*\(|#\s*pragma\s+omp\b")
OMP_SIMD_RE = re.compile(r"#\s*pragma\s+omp\s+simd\b")
STD_FUNCTION_RE = re.compile(r"\bstd::function\b")
# std::this_thread does not match: after "std::" the pattern requires
# "thread" or "jthread" immediately.
STD_THREAD_RE = re.compile(r"\bstd::j?thread\b")
UNALIGNED_RE = re.compile(r"\bstd::vector<\s*(val_t|float)\s*>")
FIELD_RE = re.compile(r'\.field\(\s*"([^"]+)"')


def in_dir(rel, top):
    return rel == top or rel.startswith(top.rstrip("/") + "/")


def lint_sources(root):
    findings = []
    for rel in iter_source_files(root, "src"):
        lines = read_lines(root, rel)
        if not in_dir(rel, "src/csf"):
            scan_pattern(
                root, rel, lines, "wide-accessor", WIDE_ACCESSOR_RE,
                "raw fids()/fptr() outside src/csf: these throw on "
                "narrow levels; use the width-checked visitors",
                findings)
        if not in_dir(rel, "src/parallel"):
            scan_pattern(
                root, rel, lines, "omp-outside-parallel", OMP_RE,
                "OpenMP runtime use outside src/parallel: route team "
                "shape and scheduling through the parallel/ layer",
                findings, exempt=OMP_SIMD_RE)
            scan_pattern(
                root, rel, lines, "omp-outside-parallel", STD_THREAD_RE,
                "raw std::thread outside src/parallel: spawn teams "
                "through parallel_region so the backend seam "
                "(parallel/backend.hpp) stays in charge",
                findings)
        if (in_dir(rel, "src/la") or in_dir(rel, "src/mttkrp")
                or in_dir(rel, "src/parallel")):
            scan_pattern(
                root, rel, lines, "std-function-hot-path",
                STD_FUNCTION_RE,
                "std::function in a kernel hot path: dispatch by "
                "template or function pointer",
                findings)
        if any(in_dir(rel, d) for d in HOT_DIRS):
            scan_pattern(
                root, rel, lines, "unaligned-value-array", UNALIGNED_RE,
                "hot-path value array is std::vector: use "
                "aligned_vector<> so rows start on a cache line",
                findings)
    return findings


def registered_bench_fields(root):
    """Union of the four registry lists in tools/bench_compare.py."""
    path = os.path.join(root, "tools", "bench_compare.py")
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    fields = set()
    for name in REGISTRY_LISTS:
        m = re.search(rf"^{name}\s*=\s*\[(.*?)\]", text,
                      re.DOTALL | re.MULTILINE)
        if m is None:
            raise SystemExit(
                f"{path}: registry list {name} not found; "
                "sptd_lint.py and bench_compare.py are out of sync")
        fields.update(re.findall(r'"([^"]+)"', m.group(1)))
    return fields


def lint_bench_fields(root):
    findings = []
    registered = registered_bench_fields(root)
    bench_dir = os.path.join(root, "bench")
    if not os.path.isdir(bench_dir):
        return findings
    for rel in iter_source_files(root, "bench"):
        lines = read_lines(root, rel)
        for idx, line in enumerate(lines):
            for m in FIELD_RE.finditer(line):
                name = m.group(1)
                if name in registered:
                    continue
                if allowed("bench-field-registry", lines, idx):
                    continue
                findings.append(Finding(
                    "bench-field-registry", rel, idx + 1,
                    f'bench field "{name}" is not registered in '
                    "tools/bench_compare.py (metric, deficit metric, "
                    "counter, or KNOWN_IDENTITY_FIELDS)"))
    return findings


def lint(root):
    return lint_sources(root) + lint_bench_fields(root)


# --self-test: every (rule, relative-path) pair that MUST be reported
# when linting tools/lint_fixtures/, with the count of findings expected
# in that file. The fixtures also seed allow-marked and exempt sites
# (omp simd, registered fields, code inside src/csf) that must NOT be
# reported; the exact-match check below catches both missed violations
# and false positives.
EXPECTED_FIXTURE_FINDINGS = {
    ("wide-accessor", "src/mttkrp/fixture_contracts.cpp"): 2,
    ("omp-outside-parallel", "src/la/fixture_hot_path.cpp"): 3,
    ("std-function-hot-path", "src/la/fixture_hot_path.cpp"): 1,
    ("std-function-hot-path", "src/parallel/fixture_context.cpp"): 1,
    ("unaligned-value-array", "src/csf/fixture_storage.cpp"): 2,
    ("bench-field-registry", "bench/bench_fixture.cpp"): 1,
}


def self_test():
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_root = os.path.join(here, "lint_fixtures")
    findings = lint(fixture_root)
    got = {}
    for f in findings:
        key = (f.rule, f.path.replace(os.sep, "/"))
        got[key] = got.get(key, 0) + 1
    ok = True
    for key, want in sorted(EXPECTED_FIXTURE_FINDINGS.items()):
        have = got.pop(key, 0)
        if have != want:
            ok = False
            print(f"self-test: {key[1]} [{key[0]}]: expected {want} "
                  f"finding(s), got {have}", file=sys.stderr)
    for key, have in sorted(got.items()):
        ok = False
        print(f"self-test: unexpected finding {key[1]} [{key[0]}] "
              f"x{have} (false positive or stale fixture)",
              file=sys.stderr)
    if ok:
        print(f"self-test: ok ({len(findings)} seeded violations "
              "reported, allow markers and exemptions honored)")
        return 0
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="tree to lint (default: the repo containing "
                         "this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint tools/lint_fixtures/ and verify the "
                         "seeded violations are found")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint(root)
    for f in findings:
        print(f)
    if findings:
        print(f"sptd_lint: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("sptd_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
