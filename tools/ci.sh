#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke run, exiting nonzero on any failure.
#
#   tools/ci.sh [build-dir]
#
# Mirrors ROADMAP.md's tier-1 command (configure, build, ctest) and then
# exercises one figure harness end to end — including the --schedule and
# --json plumbing — on a tensor small enough to finish in seconds.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== bench_compare unit: mixed-type identity fields =="
# One field ("flag") carries a bool in one record and a string in the
# next, and "steals" varies between runs: the identity key must stay
# type-stable (no TypeError from sorting unlike types) and the counter
# must not break pairing. --require-pairs makes any mispairing fatal.
FIXTURE_DIR="$BUILD_DIR/bench_compare_fixture"
mkdir -p "$FIXTURE_DIR"
cat > "$FIXTURE_DIR/base.json" <<'EOF'
{"bench":"unit","flag":true,"steals":0,"seconds":1.0}
{"bench":"unit","flag":"true","threads":1,"seconds":2.0}
EOF
cat > "$FIXTURE_DIR/cand.json" <<'EOF'
{"bench":"unit","flag":true,"steals":7,"seconds":1.1}
{"bench":"unit","flag":"true","threads":1,"seconds":2.1}
EOF
python3 tools/bench_compare.py "$FIXTURE_DIR/base.json" \
  "$FIXTURE_DIR/cand.json" --require-pairs

echo "== bench smoke: bench_fig5_routines + bench_fig4_locks =="
SMOKE_JSON="$BUILD_DIR/bench_smoke.json"
rm -f "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --rank 16 --iters 2 --trials 1 \
  --threads-list 1,2 --schedule weighted --json "$SMOKE_JSON"
# The same fig5 smoke on the wide (u32/u64) CSF layout: the ablation
# baseline for the compressed index streams, and the reference the
# csf_bytes gate below compares against.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --csf-layout wide --json "$SMOKE_JSON"
# The same smokes under the work-stealing policy (weighted seed +
# per-thread deques), exercising the steals JSON plumbing end to end.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule workstealing --json "$SMOKE_JSON"
# The same fig5 smoke under the narrow value streams: mixed (fp32
# streams, fp64 accumulation — the production mode) and f32 (the
# pure-fp32 ablation endpoint). Their fit rides in the JSON records and
# is gated against the f64 rows below.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --precision mixed --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --precision f32 --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig4_locks" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 2 \
  --schedule workstealing --json "$SMOKE_JSON"

echo "== completion smoke: bench_completion (als, sgd, ccd) =="
# One record per (solver, thread count); the record identity carries the
# alg field, and train_rmse/val_rmse ride as quality metrics gated by
# bench_compare below.
"$BUILD_DIR/bench_completion" \
  --preset yelp --scale 0.005 --rank 8 --iters 5 --trials 1 \
  --threads-list 1,2 --alg-list als,sgd,ccd --json "$SMOKE_JSON"

echo "== precision smoke: bench_ablation_precision (f64, f32, mixed) =="
# One record per precision carrying value_bytes and fit_gap_vs_f64; the
# byte and accuracy gates below run on these records.
"$BUILD_DIR/bench_ablation_precision" \
  --preset yelp --scale 0.002 --rank 8 --iters 5 \
  --threads-list 2 --json "$SMOKE_JSON"

# The smoke runs must have produced one JSON record per configuration:
# 8 weighted fig5 + 4 wide-layout fig5 + 4 workstealing fig5 + 8
# narrow-precision fig5 (mixed + f32) + 4 workstealing fig4 (lock kinds)
# + 6 completion (3 solvers x 2 thread counts) + 3 precision ablation.
RECORDS="$(wc -l < "$SMOKE_JSON")"
if [ "$RECORDS" -lt 37 ]; then
  echo "ci: expected >= 37 bench JSON records, got $RECORDS" >&2
  exit 1
fi

# Narrow value streams must actually shrink the bytes a launch moves, and
# the accuracy contracts must hold on the smoke tensor: mixed tracks the
# f64 CP-ALS fit within 1e-6 (fp32 streams, fp64 accumulation) and pure
# f32 within 1e-3. A mixed gap past its gate means fp64 accumulation
# leaked a narrowing somewhere — exactly the regression this exists for.
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
recs = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("bench") == "ablation_precision":
            recs[rec["precision"]] = rec
missing = {"f64", "f32", "mixed"} - set(recs)
if missing:
    raise SystemExit(f"ci: precision ablation missing records: {missing}")
for p in ("f32", "mixed"):
    total = int(recs[p]["csf_bytes"]) + int(recs[p]["value_bytes"])
    total64 = int(recs["f64"]["csf_bytes"]) + int(recs["f64"]["value_bytes"])
    if total >= total64:
        raise SystemExit(
            f"ci: {p} did not shrink csf+value bytes: "
            f"{total} vs {total64} f64")
    print(f"ci: {p} csf+value bytes {total} vs {total64} f64 "
          f"({total64 / total:.2f}x smaller)")
for p, gate in (("mixed", 1e-6), ("f32", 1e-3)):
    gap = float(recs[p]["fit_gap_vs_f64"])
    if gap > gate:
        raise SystemExit(
            f"ci: {p} fit drifted {gap:.3e} from f64 (gate {gate:.0e})")
    print(f"ci: {p} fit gap vs f64 {gap:.3e} (gate {gate:.0e})")
EOF

# Compressed CSF must actually shrink the index streams: every fig5
# configuration that ran under both layouts must report strictly fewer
# CSF bytes compressed than wide.
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
bytes_by_key = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "csf_bytes" not in rec or rec.get("bench") != "Figure 5":
            continue
        key = (rec.get("rank"), rec.get("impl"), rec.get("threads"),
               rec.get("schedule"))
        bytes_by_key.setdefault(key, {})[rec.get("csf_layout")] = \
            int(rec["csf_bytes"])
pairs = 0
for key, by_layout in bytes_by_key.items():
    if "compressed" not in by_layout or "wide" not in by_layout:
        continue
    pairs += 1
    c, w = by_layout["compressed"], by_layout["wide"]
    if c >= w:
        raise SystemExit(
            f"ci: compressed CSF did not shrink for {key}: "
            f"{c} bytes compressed vs {w} wide")
    print(f"ci: csf_bytes {key}: {c} compressed vs {w} wide "
          f"({w / c:.2f}x smaller)")
if pairs == 0:
    raise SystemExit("ci: no compressed/wide csf_bytes pairs found")
EOF

# Every solver must converge on the smoke tensor: the data is low-rank
# with values O(1), so a train RMSE above 0.5 means a solver diverged or
# went inert (the gate is deliberately loose — bench_compare handles
# drift, this catches catastrophe).
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
seen = set()
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("bench") != "completion":
            continue
        seen.add(rec["alg"])
        if float(rec["train_rmse"]) > 0.5:
            raise SystemExit(
                f"ci: completion solver {rec['alg']} failed to converge "
                f"(train_rmse {rec['train_rmse']})")
missing = {"als", "sgd", "ccd"} - seen
if missing:
    raise SystemExit(f"ci: completion smoke missing solvers: {missing}")
print(f"ci: completion smoke converged for {sorted(seen)}")
EOF

# Work stealing must engage and flow into the JSON records. Zero steals
# on one balanced smoke run is legitimate timing luck (threads can drain
# their weighted-seeded deques in lockstep), so before declaring the
# plumbing broken, retry with an oversubscribed team, where preemption
# forces imbalance.
sum_steals() {
  python3 - "$1" <<'EOF'
import json, sys
total = 0
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("schedule") == "workstealing":
            total += int(rec.get("steals", 0))
print(total)
EOF
}
WS_STEALS="$(sum_steals "$SMOKE_JSON")"
if [ "$WS_STEALS" -lt 1 ]; then
  PROBE_JSON="$BUILD_DIR/ws_steal_probe.json"
  for attempt in 1 2 3 4 5; do
    rm -f "$PROBE_JSON"
    "$BUILD_DIR/bench_fig4_locks" \
      --preset yelp --scale 0.002 --iters 2 --trials 1 \
      --threads-list "$(( $(nproc) * 4 ))" \
      --schedule workstealing --json "$PROBE_JSON" > /dev/null
    WS_STEALS="$(sum_steals "$PROBE_JSON")"
    if [ "$WS_STEALS" -ge 1 ]; then
      break
    fi
  done
fi
if [ "$WS_STEALS" -lt 1 ]; then
  echo "ci: workstealing recorded zero steals even oversubscribed" >&2
  exit 1
fi
echo "ci: workstealing smoke recorded $WS_STEALS steals"

# Perf-regression gate against the checked-in baseline. The smoke tensor
# is tiny and the box is shared, so the gate is loose (4x): it exists to
# catch order-of-magnitude regressions (an accidentally deoptimized hot
# loop), not jitter. Refresh bench/baseline.json with the same two
# invocations above when the hardware or the expected performance changes.
echo "== bench compare vs bench/baseline.json =="
python3 tools/bench_compare.py bench/baseline.json "$SMOKE_JSON" \
  --threshold 3.0

echo "== ok ($RECORDS bench records) =="
