#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke run, exiting nonzero on any failure.
#
#   tools/ci.sh [build-dir]
#
# Mirrors ROADMAP.md's tier-1 command (configure, build, ctest) and then
# exercises one figure harness end to end — including the --schedule and
# --json plumbing — on a tensor small enough to finish in seconds.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== bench smoke: bench_fig5_routines =="
SMOKE_JSON="$BUILD_DIR/bench_smoke.json"
rm -f "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --json "$SMOKE_JSON"

# The smoke run must have produced one JSON record per (impl, threads).
RECORDS="$(wc -l < "$SMOKE_JSON")"
if [ "$RECORDS" -lt 4 ]; then
  echo "ci: expected >= 4 bench JSON records, got $RECORDS" >&2
  exit 1
fi
echo "== ok ($RECORDS bench records) =="
