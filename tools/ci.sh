#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke run, exiting nonzero on any failure.
#
#   tools/ci.sh [build-dir]
#
# Mirrors ROADMAP.md's tier-1 command (configure, build, ctest) and then
# exercises one figure harness end to end — including the --schedule and
# --json plumbing — on a tensor small enough to finish in seconds.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== bench smoke: bench_fig5_routines =="
SMOKE_JSON="$BUILD_DIR/bench_smoke.json"
rm -f "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --rank 16 --iters 2 --trials 1 \
  --threads-list 1,2 --schedule weighted --json "$SMOKE_JSON"

# The smoke run must have produced one JSON record per (impl, threads, rank).
RECORDS="$(wc -l < "$SMOKE_JSON")"
if [ "$RECORDS" -lt 8 ]; then
  echo "ci: expected >= 8 bench JSON records, got $RECORDS" >&2
  exit 1
fi

# Perf-regression gate against the checked-in baseline. The smoke tensor
# is tiny and the box is shared, so the gate is loose (4x): it exists to
# catch order-of-magnitude regressions (an accidentally deoptimized hot
# loop), not jitter. Refresh bench/baseline.json with the same two
# invocations above when the hardware or the expected performance changes.
echo "== bench compare vs bench/baseline.json =="
python3 tools/bench_compare.py bench/baseline.json "$SMOKE_JSON" \
  --threshold 3.0

echo "== ok ($RECORDS bench records) =="
