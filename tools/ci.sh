#!/usr/bin/env bash
# Tier-1 verify plus a bench smoke run, exiting nonzero on any failure.
#
#   tools/ci.sh [build-dir]
#
# Mirrors ROADMAP.md's tier-1 command (configure, build, ctest) and then
# exercises one figure harness end to end — including the --schedule and
# --json plumbing — on a tensor small enough to finish in seconds.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

echo "== sptd_lint: self-test + tree =="
# First its own fixtures (a linter that stopped finding its seeded
# violations gates nothing), then the repo contracts on the real tree.
# Runs before the build: a contract violation should fail in seconds.
python3 tools/sptd_lint.py --self-test
python3 tools/sptd_lint.py

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build (-j$JOBS) =="
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== clang-tidy gate =="
# Zero-findings gate over the curated .clang-tidy profile, using the
# compile database the configure step just exported. On machines with no
# clang-tidy (this repo's usual gcc-only container) the runner skips
# loudly and green; where LLVM is installed, any finding fails CI.
tools/run_tidy.sh "$BUILD_DIR"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

echo "== ctest under the pool backend =="
# The whole suite again with SPTD_BACKEND=pool: every parallel_region in
# every test runs on the persistent std::thread pool instead of libgomp.
# Tests that pin a backend themselves (test_backend, the pool stress
# section) are unaffected; everything else proves backend-independence.
SPTD_BACKEND=pool ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j"$JOBS"

echo "== resilience smoke: kill mid-run, resume, bitwise-equal model =="
# A SIGKILLed single-thread f64 run, resumed from its newest checkpoint,
# must produce a model file byte-identical to the uninterrupted run's.
RES_DIR="$BUILD_DIR/resilience_smoke"
rm -rf "$RES_DIR"
mkdir -p "$RES_DIR"
"$BUILD_DIR/sptd" generate --preset yelp --scale 0.01 \
  "$RES_DIR/smoke.tns" > /dev/null
"$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 12 \
  --tolerance 0 --threads 1 --output "$RES_DIR/ref.model" > /dev/null
"$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 12 \
  --tolerance 0 --threads 1 --checkpoint-dir "$RES_DIR/ckpt" \
  --checkpoint-every 2 --output "$RES_DIR/killed.model" > /dev/null &
CPD_PID=$!
# Kill as soon as the first checkpoint lands (or let a fast box finish:
# the resume below then replays from the last mid-run checkpoint, which
# proves the same bitwise property).
for _ in $(seq 1 600); do
  if ls "$RES_DIR/ckpt"/*.ckpt > /dev/null 2>&1; then break; fi
  if ! kill -0 "$CPD_PID" 2> /dev/null; then break; fi
  sleep 0.01
done
kill -9 "$CPD_PID" 2> /dev/null || true
wait "$CPD_PID" 2> /dev/null || true
if ! ls "$RES_DIR/ckpt"/*.ckpt > /dev/null 2>&1; then
  echo "ci: checkpointed run wrote no checkpoint before exiting" >&2
  exit 1
fi
RESUME_OUT="$("$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
  --iters 12 --tolerance 0 --threads 1 \
  --checkpoint-dir "$RES_DIR/ckpt" --resume \
  --output "$RES_DIR/resumed.model")"
grep -q "resumed from iteration" <<< "$RESUME_OUT"
cmp "$RES_DIR/ref.model" "$RES_DIR/resumed.model"
echo "ci: kill-and-resume model is bitwise identical"

echo "== resilience smoke: fault-injection matrix =="
# Every --inject fault class detects and recovers (or fails structurally)
# through the CLI, matching the ctest coverage end to end.
CPD_FAULT_OUT="$("$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
  --iters 6 --tolerance 0 --threads 1 --inject corrupt-factor:3)"
grep -q "1 retries, 1 rollbacks" <<< "$CPD_FAULT_OUT" \
  || { echo "ci: cpd corrupt-factor recovery missing" >&2; exit 1; }
TUCKER_FAULT_OUT="$("$BUILD_DIR/sptd" tucker "$RES_DIR/smoke.tns" \
  --core 4x4x4 --iters 5 --tolerance 0 --threads 1 \
  --inject corrupt-factor:2)"
grep -q "1 retries, 1 rollbacks" <<< "$TUCKER_FAULT_OUT" \
  || { echo "ci: tucker corrupt-factor recovery missing" >&2; exit 1; }
# complete has no --tolerance flag, so inject at iteration 1 — before
# validation-based early stopping can end the run.
COMPLETE_FAULT_OUT="$("$BUILD_DIR/sptd" complete "$RES_DIR/smoke.tns" \
  --rank 6 --iters 5 --threads 1 --inject corrupt-factor:1)"
grep -q "1 retries, 1 rollbacks" <<< "$COMPLETE_FAULT_OUT" \
  || { echo "ci: complete corrupt-factor recovery missing" >&2; exit 1; }
# Exhausting the retry budget must fail the run (structured, nonzero exit).
if "$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 6 \
  --tolerance 0 --threads 1 --inject nan-values:1 --max-retries 2 \
  > /dev/null 2>&1; then
  echo "ci: retry exhaustion did not fail the run" >&2
  exit 1
fi
# A torn checkpoint write (injected IO failure) is counted, later writes
# succeed, and a resume skips the torn file for the newest valid one.
rm -rf "$RES_DIR/ckpt_iofail"
IOFAIL_OUT="$("$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
  --iters 8 --tolerance 0 --threads 1 \
  --checkpoint-dir "$RES_DIR/ckpt_iofail" --checkpoint-every 2 \
  --inject io-fail:1)"
grep -q "1 failed writes" <<< "$IOFAIL_OUT" \
  || { echo "ci: io-fail injection not reported" >&2; exit 1; }
IOFAIL_RESUME_OUT="$("$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
  --iters 8 --tolerance 0 --threads 1 \
  --checkpoint-dir "$RES_DIR/ckpt_iofail" --resume)"
grep -q "resumed from iteration" <<< "$IOFAIL_RESUME_OUT" \
  || { echo "ci: resume after torn checkpoint failed" >&2; exit 1; }
echo "ci: fault-injection matrix recovered on every class"

echo "== dist smoke: shm transport matches sim bitwise =="
# The fork-per-locale shared-memory transport must reproduce the
# in-process simulation exactly (both sum partials in locale order, one
# thread per locale, f64).
"$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 6 \
  --dist-grid 2,2,1 --transport sim \
  --output "$RES_DIR/dist_sim.model" > /dev/null
"$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 6 \
  --dist-grid 2,2,1 --transport shm \
  --output "$RES_DIR/dist_shm.model" > /dev/null
cmp "$RES_DIR/dist_sim.model" "$RES_DIR/dist_shm.model"
echo "ci: shm transport model is bitwise identical to sim"

echo "== dist recovery smoke: SIGKILL a real rank, recover, bitwise =="
# rank-kill:1@3 makes the rank-1 child SIGKILL itself mid-iteration; the
# launcher must detect the death, roll every rank back to the newest
# per-rank checkpoint, respawn the locale, and still produce a model
# byte-identical to the uninjected shm run.
rm -rf "$RES_DIR/dist_ckpt"
DIST_KILL_OUT="$("$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
  --iters 6 --dist-grid 2,2,1 --transport shm \
  --inject rank-kill:1@3 --checkpoint-dir "$RES_DIR/dist_ckpt" \
  --checkpoint-every 2 --output "$RES_DIR/dist_killed.model")"
grep -q "locale restarts" <<< "$DIST_KILL_OUT" \
  || { echo "ci: rank-kill recovery not reported" >&2; exit 1; }
grep -q "resumed from iteration" <<< "$DIST_KILL_OUT" \
  || { echo "ci: rank-kill rollback did not restore a checkpoint" >&2
       exit 1; }
cmp "$RES_DIR/dist_shm.model" "$RES_DIR/dist_killed.model"
echo "ci: rank-kill recovery model is bitwise identical"

echo "== bench_compare unit: mixed-type identity fields =="
# One field ("flag") carries a bool in one record and a string in the
# next, and "steals" varies between runs: the identity key must stay
# type-stable (no TypeError from sorting unlike types) and the counter
# must not break pairing. --require-pairs makes any mispairing fatal.
FIXTURE_DIR="$BUILD_DIR/bench_compare_fixture"
mkdir -p "$FIXTURE_DIR"
cat > "$FIXTURE_DIR/base.json" <<'EOF'
{"bench":"unit","flag":true,"steals":0,"seconds":1.0}
{"bench":"unit","flag":"true","threads":1,"seconds":2.0}
EOF
cat > "$FIXTURE_DIR/cand.json" <<'EOF'
{"bench":"unit","flag":true,"steals":7,"seconds":1.1}
{"bench":"unit","flag":"true","threads":1,"seconds":2.1}
EOF
python3 tools/bench_compare.py "$FIXTURE_DIR/base.json" \
  "$FIXTURE_DIR/cand.json" --require-pairs

echo "== bench smoke: bench_fig5_routines + bench_fig4_locks =="
SMOKE_JSON="$BUILD_DIR/bench_smoke.json"
rm -f "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --rank 16 --iters 2 --trials 1 \
  --threads-list 1,2 --schedule weighted --json "$SMOKE_JSON"
# The same fig5 smoke on the wide (u32/u64) CSF layout: the ablation
# baseline for the compressed index streams, and the reference the
# csf_bytes gate below compares against.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --csf-layout wide --json "$SMOKE_JSON"
# The same smokes under the work-stealing policy (weighted seed +
# per-thread deques), exercising the steals JSON plumbing end to end.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule workstealing --json "$SMOKE_JSON"
# The same fig5 smoke under the narrow value streams: mixed (fp32
# streams, fp64 accumulation — the production mode) and f32 (the
# pure-fp32 ablation endpoint). Their fit rides in the JSON records and
# is gated against the f64 rows below.
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --precision mixed --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --precision f32 --json "$SMOKE_JSON"
"$BUILD_DIR/bench_fig4_locks" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 2 \
  --schedule workstealing --json "$SMOKE_JSON"
# The same fig5 smoke on the pool backend: identical decompositions, the
# persistent std::thread pool running every region. Records pair against
# their own backend=pool baseline rows (backend is an identity field).
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.002 --iters 2 --trials 1 --threads-list 1,2 \
  --schedule weighted --backend pool --json "$SMOKE_JSON"
# The same fig5 smoke with mid-run checkpointing on: records carry
# checkpoint_time/checkpoint_bytes, and the overhead gate below bounds the
# cost at 5% of total_seconds. Single-threaded and 10 iterations so the
# --checkpoint-every 5 snapshot actually fires mid-run (a checkpoint at
# the final iteration is skipped as pointless). Scale 0.02, not 0.002:
# one fsync is a fixed ~1.5 ms floor, so the run must be big enough for
# the 5% bound to measure the real serialization cost, not the syscall.
# Three trials because checkpoint_time reports the best trial: a single
# fsync colliding with an unrelated journal commit costs ~0.3 s, and a
# one-trial measurement would fail the gate on that noise alone.
rm -rf "$BUILD_DIR/bench_ckpt"
"$BUILD_DIR/bench_fig5_routines" \
  --preset yelp --scale 0.02 --iters 10 --trials 3 --threads-list 1 \
  --schedule weighted --checkpoint-every 5 \
  --checkpoint-dir "$BUILD_DIR/bench_ckpt" --json "$SMOKE_JSON"

echo "== completion smoke: bench_completion (als, sgd, ccd) =="
# One record per (solver, thread count); the record identity carries the
# alg field, and train_rmse/val_rmse ride as quality metrics gated by
# bench_compare below.
"$BUILD_DIR/bench_completion" \
  --preset yelp --scale 0.005 --rank 8 --iters 5 --trials 1 \
  --threads-list 1,2 --alg-list als,sgd,ccd --json "$SMOKE_JSON"

echo "== precision smoke: bench_ablation_precision (f64, f32, mixed) =="
# One record per precision carrying value_bytes and fit_gap_vs_f64; the
# byte and accuracy gates below run on these records.
"$BUILD_DIR/bench_ablation_precision" \
  --preset yelp --scale 0.002 --rank 8 --iters 5 \
  --threads-list 2 --json "$SMOKE_JSON"

echo "== oversubscribe smoke: composition scenario (omp vs pool) =="
# Phase rows plus one concurrent-decompositions row per backend: two
# whole CP-ALS runs sharing the process, each asking for the sweep's
# largest team. These rows ride into the baseline; the >= 1.3x
# composition gate below runs on dedicated probe files.
for BK in omp pool; do
  "$BUILD_DIR/bench_ablation_oversubscribe" \
    --preset yelp --scale 0.002 --iters 40 --threads-list 2,8 \
    --concurrent 2 --backend "$BK" --json "$SMOKE_JSON"
done

echo "== dist smoke: bench_ablation_distgrid (sim + shm transports) =="
# Five grid shapes per transport. The sim rows carry the modeled halo
# volume only; the shm rows fork one real process per locale over the
# shared-memory ring and carry comm_bytes_measured /
# comm_seconds_measured next to the model. transport is an identity
# field, so the two sets pair against their own baseline rows.
for TR in sim shm; do
  "$BUILD_DIR/bench_ablation_distgrid" \
    --preset yelp --scale 0.002 --rank 8 --iters 3 \
    --transport "$TR" --json "$SMOKE_JSON"
done

# The smoke runs must have produced one JSON record per configuration:
# 8 weighted fig5 + 4 wide-layout fig5 + 4 workstealing fig5 + 8
# narrow-precision fig5 (mixed + f32) + 2 checkpointed fig5 + 4
# workstealing fig4 (lock kinds) + 4 pool-backend fig5 + 6 completion
# (3 solvers x 2 thread counts) + 3 precision ablation + 6
# oversubscribe (2 backends x (2 phase rows + 1 concurrent)) + 10
# distgrid (5 grids x 2 transports).
RECORDS="$(wc -l < "$SMOKE_JSON")"
if [ "$RECORDS" -lt 59 ]; then
  echo "ci: expected >= 59 bench JSON records, got $RECORDS" >&2
  exit 1
fi

# Wall-clock threshold gates (checkpoint overhead, pool composition and
# parity below) compare short probe runs, so on shared, throttled, or
# low-core runners they are load-sensitive: there they only warn.
# Structural and determinism gates (record counts, byte sizes, fit gaps,
# convergence) stay hard everywhere. SPTD_CI_PERF_GATES=hard|advisory
# overrides the autodetect (default: hard on >= 8 cores, advisory below).
PERF_GATES="${SPTD_CI_PERF_GATES:-}"
if [ -z "$PERF_GATES" ]; then
  if [ "$(nproc)" -ge 8 ]; then PERF_GATES=hard; else PERF_GATES=advisory; fi
fi
perf_gate_fail() {
  if [ "$PERF_GATES" = hard ]; then
    echo "ci: $*" >&2
    exit 1
  fi
  echo "ci: WARNING (advisory perf gate on non-dedicated runner): $*" >&2
}

# Checkpointing must stay cheap. Every checkpointed fig5 record carries
# the per-trial serialization + fsync cost in checkpoint_time; gate it at
# 5% of that record's total_seconds rather than ratio-checking against an
# aging baseline (the cost is wall-clock-noisy, the bound is the
# contract). Exit 10 marks an overhead violation — a wall-clock gate that
# perf_gate_fail demotes to a warning on non-dedicated runners; a missing
# record stays a hard structural failure.
CKPT_RC=0
python3 - "$SMOKE_JSON" <<'EOF' || CKPT_RC=$?
import json, sys
checked = 0
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("bench") != "Figure 5":
            continue
        if int(rec.get("checkpoint_every", 0)) != 5:
            continue
        checked += 1
        ct = float(rec["checkpoint_time"])
        total = float(rec["total_seconds"])
        if ct > 0.05 * total:
            print(f"ci: checkpoint overhead {ct:.4f}s exceeds 5% of "
                  f"{total:.4f}s total for impl={rec.get('impl')}",
                  file=sys.stderr)
            sys.exit(10)
        print(f"ci: checkpoint overhead impl={rec.get('impl')}: "
              f"{ct:.4f}s of {total:.4f}s "
              f"({100 * ct / total:.1f}%, {rec['checkpoint_bytes']} bytes)")
if checked == 0:
    raise SystemExit("ci: no checkpointed fig5 records found")
EOF
if [ "$CKPT_RC" = 10 ]; then
  perf_gate_fail "checkpoint overhead exceeded its 5% bound (see above)"
elif [ "$CKPT_RC" != 0 ]; then
  exit "$CKPT_RC"
fi

# Narrow value streams must actually shrink the bytes a launch moves, and
# the accuracy contracts must hold on the smoke tensor: mixed tracks the
# f64 CP-ALS fit within 1e-6 (fp32 streams, fp64 accumulation) and pure
# f32 within 1e-3. A mixed gap past its gate means fp64 accumulation
# leaked a narrowing somewhere — exactly the regression this exists for.
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
recs = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("bench") == "ablation_precision":
            recs[rec["precision"]] = rec
missing = {"f64", "f32", "mixed"} - set(recs)
if missing:
    raise SystemExit(f"ci: precision ablation missing records: {missing}")
for p in ("f32", "mixed"):
    total = int(recs[p]["csf_bytes"]) + int(recs[p]["value_bytes"])
    total64 = int(recs["f64"]["csf_bytes"]) + int(recs["f64"]["value_bytes"])
    if total >= total64:
        raise SystemExit(
            f"ci: {p} did not shrink csf+value bytes: "
            f"{total} vs {total64} f64")
    print(f"ci: {p} csf+value bytes {total} vs {total64} f64 "
          f"({total64 / total:.2f}x smaller)")
for p, gate in (("mixed", 1e-6), ("f32", 1e-3)):
    gap = float(recs[p]["fit_gap_vs_f64"])
    if gap > gate:
        raise SystemExit(
            f"ci: {p} fit drifted {gap:.3e} from f64 (gate {gate:.0e})")
    print(f"ci: {p} fit gap vs f64 {gap:.3e} (gate {gate:.0e})")
EOF

# Compressed CSF must actually shrink the index streams: every fig5
# configuration that ran under both layouts must report strictly fewer
# CSF bytes compressed than wide.
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
bytes_by_key = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "csf_bytes" not in rec or rec.get("bench") != "Figure 5":
            continue
        key = (rec.get("preset"), rec.get("scale"), rec.get("rank"),
               rec.get("impl"), rec.get("threads"), rec.get("schedule"))
        bytes_by_key.setdefault(key, {})[rec.get("csf_layout")] = \
            int(rec["csf_bytes"])
pairs = 0
for key, by_layout in bytes_by_key.items():
    if "compressed" not in by_layout or "wide" not in by_layout:
        continue
    pairs += 1
    c, w = by_layout["compressed"], by_layout["wide"]
    if c >= w:
        raise SystemExit(
            f"ci: compressed CSF did not shrink for {key}: "
            f"{c} bytes compressed vs {w} wide")
    print(f"ci: csf_bytes {key}: {c} compressed vs {w} wide "
          f"({w / c:.2f}x smaller)")
if pairs == 0:
    raise SystemExit("ci: no compressed/wide csf_bytes pairs found")
EOF

# Every solver must converge on the smoke tensor: the data is low-rank
# with values O(1), so a train RMSE above 0.5 means a solver diverged or
# went inert (the gate is deliberately loose — bench_compare handles
# drift, this catches catastrophe).
python3 - "$SMOKE_JSON" <<'EOF'
import json, sys
seen = set()
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("bench") != "completion":
            continue
        seen.add(rec["alg"])
        if float(rec["train_rmse"]) > 0.5:
            raise SystemExit(
                f"ci: completion solver {rec['alg']} failed to converge "
                f"(train_rmse {rec['train_rmse']})")
missing = {"als", "sgd", "ccd"} - seen
if missing:
    raise SystemExit(f"ci: completion smoke missing solvers: {missing}")
print(f"ci: completion smoke converged for {sorted(seen)}")
EOF

# Work stealing must engage and flow into the JSON records. Zero steals
# on one balanced smoke run is legitimate timing luck (threads can drain
# their weighted-seeded deques in lockstep), so before declaring the
# plumbing broken, retry with an oversubscribed team, where preemption
# forces imbalance.
sum_steals() {
  python3 - "$1" <<'EOF'
import json, sys
total = 0
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec.get("schedule") == "workstealing":
            total += int(rec.get("steals", 0))
print(total)
EOF
}
WS_STEALS="$(sum_steals "$SMOKE_JSON")"
if [ "$WS_STEALS" -lt 1 ]; then
  PROBE_JSON="$BUILD_DIR/ws_steal_probe.json"
  for attempt in 1 2 3 4 5; do
    rm -f "$PROBE_JSON"
    "$BUILD_DIR/bench_fig4_locks" \
      --preset yelp --scale 0.002 --iters 2 --trials 1 \
      --threads-list "$(( $(nproc) * 4 ))" \
      --schedule workstealing --json "$PROBE_JSON" > /dev/null
    WS_STEALS="$(sum_steals "$PROBE_JSON")"
    if [ "$WS_STEALS" -ge 1 ]; then
      break
    fi
  done
fi
if [ "$WS_STEALS" -lt 1 ]; then
  echo "ci: workstealing recorded zero steals even oversubscribed" >&2
  exit 1
fi
echo "ci: workstealing smoke recorded $WS_STEALS steals"

# Pool-backend contracts, measured on dedicated probe runs (never the
# baseline-bound smoke rows — wall-clock gates and trajectory rows have
# different noise disciplines):
#  * Composition: two concurrent CP-ALS runs sharing the process must be
#    >= 1.3x faster wall-clock under pool than under omp — omp wakes a
#    private libgomp team per run (oversubscription), pool multiplexes
#    both onto one worker set.
#  * Parity: a single-run MTTKRP sweep at 2 threads under pool must be
#    within 10% of omp (min over attempts on both sides — the shared box
#    makes any single timing noisy).
# Retried like the steal gate: one noisy attempt is timing luck, five
# failures is a regression. Both are wall-clock gates, so perf_gate_fail
# (defined with the PERF_GATES autodetect above) demotes them to
# warnings on non-dedicated runners.
echo "== pool backend gates: composition (>= 1.3x) + parity (<= 1.10x)" \
  "[$PERF_GATES] =="
PROBE_OMP="$BUILD_DIR/backend_probe_omp.json"
PROBE_POOL="$BUILD_DIR/backend_probe_pool.json"
COMP_OK=0
PAR_OK=0
OMP_MTTKRP_MIN=inf
POOL_MTTKRP_MIN=inf
for attempt in 1 2 3 4 5; do
  rm -f "$PROBE_OMP" "$PROBE_POOL"
  "$BUILD_DIR/bench_ablation_oversubscribe" \
    --preset yelp --scale 0.002 --iters 40 --threads-list 2,8 \
    --concurrent 2 --backend omp --json "$PROBE_OMP" > /dev/null
  "$BUILD_DIR/bench_ablation_oversubscribe" \
    --preset yelp --scale 0.002 --iters 40 --threads-list 2,8 \
    --concurrent 2 --backend pool --json "$PROBE_POOL" > /dev/null
  GATE_EVAL="$(python3 - "$PROBE_OMP" "$PROBE_POOL" \
      "$OMP_MTTKRP_MIN" "$POOL_MTTKRP_MIN" <<'EOF'
import json, sys

def load(path):
    comp, mttkrp = None, None
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            if rec.get("config") == "concurrent-2":
                comp = float(rec["seconds"])
            if rec.get("config") == "phases" and rec.get("threads") == 2:
                mttkrp = float(rec["MTTKRP"])
    if comp is None or mttkrp is None:
        raise SystemExit("ci: backend probe missing expected records")
    return comp, mttkrp

omp_comp, omp_mttkrp = load(sys.argv[1])
pool_comp, pool_mttkrp = load(sys.argv[2])
omp_min = min(float(sys.argv[3]), omp_mttkrp)
pool_min = min(float(sys.argv[4]), pool_mttkrp)
comp_ok = int(pool_comp * 1.3 <= omp_comp)
par_ok = int(pool_min <= 1.10 * omp_min)
print(f"COMP_OK={comp_ok} PAR_OK={par_ok} "
      f"OMP_MTTKRP_MIN={omp_min} POOL_MTTKRP_MIN={pool_min} "
      f"COMP_RATIO={omp_comp / pool_comp:.2f} "
      f"PAR_RATIO={pool_min / omp_min:.2f}")
EOF
)"
  eval "$GATE_EVAL"
  if [ "$COMP_OK" = 1 ] && [ "$PAR_OK" = 1 ]; then
    break
  fi
done
if [ "$COMP_OK" != 1 ]; then
  perf_gate_fail "pool composition gate failed: concurrent runs only" \
    "${COMP_RATIO}x faster under pool (need >= 1.3x)"
fi
if [ "$PAR_OK" != 1 ]; then
  perf_gate_fail "pool MTTKRP parity gate failed: pool/omp ratio" \
    "${PAR_RATIO} (need <= 1.10)"
fi
echo "ci: pool composition ${COMP_RATIO}x faster, MTTKRP parity ratio" \
  "${PAR_RATIO}"

# Perf-regression gate against the checked-in baseline. The smoke tensor
# is tiny and the box is shared, so the gate is loose (4x): it exists to
# catch order-of-magnitude regressions (an accidentally deoptimized hot
# loop), not jitter. Refresh bench/baseline.json with the same two
# invocations above when the hardware or the expected performance changes.
# --min-seconds 1e-3: sub-millisecond phase timings (MAT NORM and friends
# on the smoke tensor) are scheduler noise on a shared box — a 30 us
# baseline against a 140 us candidate is a 4x "regression" that says
# nothing; the ms-and-up metrics (MTTKRP, TOTAL) carry the gate.
echo "== bench compare vs bench/baseline.json =="
python3 tools/bench_compare.py bench/baseline.json "$SMOKE_JSON" \
  --threshold 3.0 --min-seconds 1e-3

# Sanitized tier-1: the whole gtest suite under ASan + UBSan. Bench and
# examples are skipped (the suite covers the library; sanitized bench
# timings are meaningless anyway). Set SPTD_CI_SKIP_ASAN=1 for a quick
# local loop.
if [ "${SPTD_CI_SKIP_ASAN:-0}" != "1" ]; then
  echo "== sanitizer build + ctest (address,undefined) =="
  ASAN_BUILD="${BUILD_DIR}-asan"
  cmake -B "$ASAN_BUILD" -S . -DSPTD_SANITIZE=address,undefined \
    -DSPTD_BUILD_BENCH=OFF -DSPTD_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_BUILD" -j"$JOBS"
  ctest --test-dir "$ASAN_BUILD" --output-on-failure -j"$JOBS"
fi

# ThreadSanitizer over the std::thread concurrency stress harness. Only
# stress_concurrency is built and run: TSan cannot model libgomp's
# barriers (gcc ships no instrumented OpenMP runtime), so the OpenMP
# suites would drown real races in false positives — the harness drives
# the same deques, lock pools, reduction buffers and checkpoint overlap
# with raw std::thread instead (see tools/tsan.supp for the policy).
# Set SPTD_CI_SKIP_TSAN=1 for a quick local loop.
if [ "${SPTD_CI_SKIP_TSAN:-0}" != "1" ]; then
  echo "== sanitizer build + stress harness (thread) =="
  TSAN_BUILD="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_BUILD" -S . -DSPTD_SANITIZE=thread \
    -DSPTD_BUILD_BENCH=OFF -DSPTD_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_BUILD" --target stress_concurrency -j"$JOBS"
  TSAN_OPTIONS="suppressions=$PWD/tools/tsan.supp" \
    "$TSAN_BUILD/stress_concurrency"
fi

# MPI transport job, gated on an MPI toolchain actually being installed
# (this repo's usual container has none — the build then compiles the
# stubs and `--transport mpi` is rejected upfront, which ctest covers).
if command -v mpicxx > /dev/null 2>&1 && command -v mpirun > /dev/null 2>&1
then
  echo "== MPI build + dist smoke (one rank per locale) =="
  MPI_BUILD="${BUILD_DIR}-mpi"
  cmake -B "$MPI_BUILD" -S . -DSPTD_BUILD_BENCH=OFF \
    -DSPTD_BUILD_EXAMPLES=OFF
  cmake --build "$MPI_BUILD" -j"$JOBS"
  ctest --test-dir "$MPI_BUILD" --output-on-failure -j"$JOBS"
  mpirun -n 4 "$MPI_BUILD/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 \
    --iters 4 --dist-grid 2,2,1 --transport mpi \
    --output "$RES_DIR/dist_mpi.model"
  # Same contract as shm: bitwise-identical to the sim run (4 iters of
  # the sim reference would differ from the 6-iter model above, so
  # regenerate the sim side at the same length).
  "$BUILD_DIR/sptd" cpd "$RES_DIR/smoke.tns" --rank 8 --iters 4 \
    --dist-grid 2,2,1 --transport sim \
    --output "$RES_DIR/dist_sim4.model" > /dev/null
  cmp "$RES_DIR/dist_sim4.model" "$RES_DIR/dist_mpi.model"
  echo "ci: mpi transport model is bitwise identical to sim"
else
  echo "== MPI toolchain not installed; skipping the MPI transport job =="
fi

echo "== ok ($RECORDS bench records) =="
