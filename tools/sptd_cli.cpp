/// \file sptd_cli.cpp
/// \brief The `sptd` command-line tool — the analogue of the `splatt`
///        executable that SPLATT ships. Subcommands:
///
///   sptd stats <tensor.tns|.bin>          tensor statistics (Table I row)
///   sptd convert <in> <out>               .tns <-> .bin by extension
///   sptd generate <out.tns> [--preset ... --scale ...]
///   sptd cpd <tensor> [--rank ... --iters ... --threads ... --impl ...]
///   sptd complete <tensor> [--alg als|sgd|ccd --rank ... --holdout ...]
///   sptd reorder <in> <out> [--policy random|frequency]
///
/// Every subcommand takes --help.

#include <cstdio>
#include <cstring>
#include <string>

#include "sptd.hpp"

namespace {

using namespace sptd;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

SparseTensor load(const std::string& path, bool skip_bad_lines = false) {
  if (ends_with(path, ".bin")) {
    return read_bin_file(path);
  }
  TnsReadOptions ropts;
  ropts.skip_bad_lines = skip_bad_lines;
  TnsReadStats stats;
  SparseTensor t = read_tns_file(path, ropts, &stats);
  if (stats.dropped > 0) {
    std::fprintf(stderr,
                 "warning: dropped %llu malformed line%s from %s "
                 "(first: %s)\n",
                 static_cast<unsigned long long>(stats.dropped),
                 stats.dropped == 1 ? "" : "s", path.c_str(),
                 stats.first_error.c_str());
  }
  return t;
}

void store(const SparseTensor& t, const std::string& path) {
  if (ends_with(path, ".bin")) {
    write_bin_file(t, path);
  } else {
    write_tns_file(t, path);
  }
}

int cmd_stats(int argc, const char* const* argv) {
  Options cli("sptd stats", "print tensor statistics");
  cli.add("csf", "two", "CSF policy for the storage report: one|two|all");
  cli.add_flag("no-csf", "skip the CSF storage report (skips the sort)");
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "stats: need a tensor file");
  const SparseTensor t = load(cli.positional().front());
  const TensorStats s = compute_stats(t);
  std::printf("file:      %s\n", cli.positional().front().c_str());
  std::printf("order:     %d\n", t.order());
  std::printf("dims:      %s\n", format_dims(s.dims).c_str());
  std::printf("nnz:       %llu\n",
              static_cast<unsigned long long>(s.nnz));
  std::printf("density:   %.3e\n", s.density);
  std::printf("tns size:  ~%s\n", format_bytes(s.tns_bytes).c_str());
  for (std::size_t m = 0; m < s.modes.size(); ++m) {
    const ModeStats& ms = s.modes[m];
    std::printf("mode %zu:    dim %u, nonempty %u, max slice %llu, "
                "avg slice %.1f\n",
                m, static_cast<unsigned>(ms.dim),
                static_cast<unsigned>(ms.nonempty),
                static_cast<unsigned long long>(ms.max_slice_nnz),
                ms.avg_slice_nnz);
  }
  if (cli.get_bool("no-csf")) {
    return 0;
  }

  // CSF storage report: per-level index widths and bytes under the
  // compressed layout, with the wide layout's total for comparison —
  // derived arithmetically (same fiber counts, fixed u32/u64 widths)
  // rather than paying a second sort + build.
  const CsfPolicy policy = parse_csf_policy(cli.get_string("csf"));
  const int nthreads = hardware_threads();
  SparseTensor work = t;
  const CsfSet set(work, policy, nthreads, nullptr, SortVariant::kAllOpts,
                   CsfLayout::kCompressed);
  const CsfSetStats cs = compute_csf_stats(set);
  std::uint64_t wide_total = 0;
  for (const CsfRepStats& rep : cs.reps) {
    // vals + root prefix are width-independent.
    wide_total += rep.total_bytes - rep.index_bytes;
    for (const CsfLevelStats& ls : rep.levels) {
      wide_total += ls.nfibers * sizeof(idx_t);
      if (ls.ptr_width > 0) {
        wide_total += (ls.nfibers + 1) * sizeof(nnz_t);
      }
    }
  }
  std::printf("csf (%s policy, compressed layout):\n",
              csf_policy_name(policy));
  for (const CsfRepStats& rep : cs.reps) {
    std::printf("  rep root mode %d: %s (index %s)\n", rep.root_mode,
                format_bytes(rep.total_bytes).c_str(),
                format_bytes(rep.index_bytes).c_str());
    for (const CsfLevelStats& ls : rep.levels) {
      if (ls.ptr_width > 0) {
        std::printf("    level %d (mode %d): %llu fibers, fids u%d "
                    "(%s), fptr u%d (%s)\n",
                    ls.level, ls.mode,
                    static_cast<unsigned long long>(ls.nfibers),
                    8 * ls.fid_width, format_bytes(ls.fid_bytes).c_str(),
                    8 * ls.ptr_width, format_bytes(ls.ptr_bytes).c_str());
      } else {
        std::printf("    level %d (mode %d): %llu leaves, fids u%d (%s)\n",
                    ls.level, ls.mode,
                    static_cast<unsigned long long>(ls.nfibers),
                    8 * ls.fid_width, format_bytes(ls.fid_bytes).c_str());
      }
    }
  }
  std::printf("  csf bytes: %s compressed vs %s wide (%.2fx)\n",
              format_bytes(cs.total_bytes).c_str(),
              format_bytes(wide_total).c_str(),
              cs.total_bytes > 0
                  ? static_cast<double>(wide_total) /
                        static_cast<double>(cs.total_bytes)
                  : 0.0);
  // Value-stream bytes per MTTKRP launch under each precision: the other
  // half of the bandwidth story once the index stream is compressed
  // (f32 and mixed both stream 4-byte values).
  const std::uint64_t v64 = set.value_bytes(Precision::kF64);
  const std::uint64_t v32 = set.value_bytes(Precision::kMixed);
  std::printf("  value bytes: %s f64 vs %s f32/mixed (%.2fx)\n",
              format_bytes(v64).c_str(), format_bytes(v32).c_str(),
              v32 > 0 ? static_cast<double>(v64) /
                            static_cast<double>(v32)
                      : 0.0);
  return 0;
}

int cmd_validate(int argc, const char* const* argv) {
  Options cli("sptd validate",
              "check a tensor file for structural problems");
  cli.add_flag("skip-bad-lines",
               "drop malformed .tns lines (counted) instead of failing");
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "validate: need a tensor file");
  const SparseTensor t =
      load(cli.positional().front(), cli.get_bool("skip-bad-lines"));
  t.validate();  // throws on out-of-range indices / non-finite values

  // Duplicate coordinates (legal but usually an upstream bug).
  SparseTensor sorted = t;
  sort_tensor(sorted, 0, hardware_threads());
  nnz_t duplicates = 0;
  const std::vector<int> perm = sort_mode_order(sorted.order(), 0);
  for (nnz_t x = 1; x < sorted.nnz(); ++x) {
    bool same = true;
    for (const int m : perm) {
      if (sorted.ind(m)[x] != sorted.ind(m)[x - 1]) {
        same = false;
        break;
      }
    }
    if (same) ++duplicates;
  }
  // Empty slices inflate dims and distort the lock heuristic.
  nnz_t empty_slices = 0;
  const TensorStats s = compute_stats(t);
  for (const auto& ms : s.modes) {
    empty_slices += ms.dim - ms.nonempty;
  }
  std::printf("ok: %llu nonzeros, %d modes\n",
              static_cast<unsigned long long>(t.nnz()), t.order());
  std::printf("duplicate coordinates: %llu%s\n",
              static_cast<unsigned long long>(duplicates),
              duplicates ? "  (consider deduplicating)" : "");
  std::printf("empty slices: %llu%s\n",
              static_cast<unsigned long long>(empty_slices),
              empty_slices ? "  (consider `sptd reorder` or remove-empty)"
                           : "");
  return 0;
}

int cmd_convert(int argc, const char* const* argv) {
  Options cli("sptd convert", "convert between .tns and .bin");
  cli.add_flag("skip-bad-lines",
               "drop malformed .tns lines (counted) instead of failing");
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(cli.positional().size() == 2,
             "convert: need <input> <output>");
  const SparseTensor t =
      load(cli.positional()[0], cli.get_bool("skip-bad-lines"));
  store(t, cli.positional()[1]);
  std::printf("wrote %llu nonzeros to %s\n",
              static_cast<unsigned long long>(t.nnz()),
              cli.positional()[1].c_str());
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  Options cli("sptd generate", "synthesize a dataset-preset tensor");
  cli.add("preset", "yelp", "Table I preset");
  cli.add("scale", "0.01", "preset scale");
  cli.add("seed", "42", "generator seed");
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "generate: need an output file");
  const auto cfg = find_preset(cli.get_string("preset"))
                       .scaled(cli.get_double("scale"),
                               static_cast<std::uint64_t>(
                                   cli.get_int("seed")));
  const SparseTensor t = generate_synthetic(cfg);
  store(t, cli.positional().front());
  std::printf("generated %s at scale %g -> %s (%llu nnz)\n",
              cli.get_string("preset").c_str(), cli.get_double("scale"),
              cli.positional().front().c_str(),
              static_cast<unsigned long long>(t.nnz()));
  return 0;
}

int cmd_cpd(int argc, const char* const* argv) {
  Options cli("sptd cpd", "CP-ALS decomposition");
  cli.add("rank", "35", "decomposition rank");
  cli.add("iters", "20", "max iterations");
  cli.add("tolerance", "1e-5", "stopping tolerance");
  cli.add("threads", "0", "threads (0 = all)");
  cli.add("impl", "c", "c|chapel-initial|chapel-optimize");
  cli.add("csf", "two", "CSF policy one|two|all");
  cli.add("csf-layout", "compressed",
          "CSF index widths: compressed (narrowest per level) | wide");
  cli.add("schedule", "weighted",
          "slice scheduling policy static|weighted|dynamic|workstealing");
  cli.add("chunk", "16",
          "dynamic/workstealing chunk target (claims per thread)");
  cli.add("kernels", "fixed",
          "inner-loop variant: fixed (rank-specialized SIMD) | generic");
  cli.add("precision", "f64",
          "value-stream precision: f64 | f32 | mixed (fp32 streams, "
          "fp64 accumulation)");
  cli.add("seed", "23", "init seed");
  cli.add("backend", parallel_backend_name(default_parallel_backend()),
          "parallel backend: omp | pool (persistent std::thread "
          "workers; composes across concurrent runs)");
  cli.add("output", "", "write the Kruskal model to this path");
  cli.add("dist-grid", "",
          "locale grid extents per mode (e.g. 2,2,1): run the "
          "medium-grained distributed driver instead of shared-memory "
          "CP-ALS");
  cli.add("transport", "sim",
          "distributed communication backend: sim (in-process "
          "simulation) | shm (fork-per-locale, real processes) | mpi "
          "(requires an MPI build)");
  cli.add_flag("nonneg", "non-negative CP");
  add_resilience_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "cpd: need a tensor file");
  SparseTensor t = load(cli.positional().front());

  if (!cli.get_string("dist-grid").empty()) {
    DistOptions dopts;
    for (const int g : cli.get_int_list("dist-grid")) {
      SPTD_CHECK(g >= 1, "cpd: --dist-grid extents must be >= 1");
      dopts.grid.push_back(static_cast<idx_t>(g));
    }
    dopts.rank = static_cast<idx_t>(cli.get_int("rank"));
    dopts.max_iterations = static_cast<int>(cli.get_int("iters"));
    dopts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    dopts.schedule = parse_schedule_policy(cli.get_string("schedule"));
    dopts.chunk_target = static_cast<int>(cli.get_int("chunk"));
    dopts.use_fixed_kernels = cli.get_string("kernels") == "fixed";
    dopts.csf_layout = parse_csf_layout(cli.get_string("csf-layout"));
    dopts.precision = parse_precision(cli.get_string("precision"));
    dopts.backend = parse_parallel_backend(cli.get_string("backend"));
    dopts.transport = parse_transport(cli.get_string("transport"));
    dopts.resilience = resilience_from_flags(cli);
    const DistResult r = dist_cp_als(t, dopts);
    // Under mpi every rank runs this path; only rank 0 reports.
    if (dopts.transport == TransportKind::kMpi && mpi_world_rank() != 0) {
      return 0;
    }
    std::printf("fit %.6f after %d iterations (%s transport, %zu "
                "locales)\n",
                r.fit_history.back(), r.iterations,
                transport_name(dopts.transport), r.locale_nnz.size());
    std::printf("  comm model %s", format_bytes(r.comm.total()).c_str());
    if (r.comm_measured.total_bytes() > 0) {
      std::printf(", measured %s (reduce %.3fs, broadcast %.3fs)",
                  format_bytes(r.comm_measured.total_bytes()).c_str(),
                  r.comm_measured.reduce_seconds,
                  r.comm_measured.broadcast_seconds);
    }
    std::printf("\n");
    if (const std::string rs = resilience_summary(r.resilience);
        !rs.empty()) {
      std::printf("  %s\n", rs.c_str());
    }
    if (const std::string out = cli.get_string("output"); !out.empty()) {
      write_model_file(r.model, out);
      std::printf("model written to %s\n", out.c_str());
    }
    return 0;
  }

  CpalsOptions opts;
  opts.rank = static_cast<idx_t>(cli.get_int("rank"));
  opts.max_iterations = static_cast<int>(cli.get_int("iters"));
  opts.tolerance = cli.get_double("tolerance");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.nthreads = static_cast<int>(cli.get_int("threads"));
  if (opts.nthreads <= 0) opts.nthreads = hardware_threads();
  opts.csf_policy = parse_csf_policy(cli.get_string("csf"));
  opts.csf_layout = parse_csf_layout(cli.get_string("csf-layout"));
  opts.schedule = parse_schedule_policy(cli.get_string("schedule"));
  opts.chunk_target = static_cast<int>(cli.get_int("chunk"));
  SPTD_CHECK(opts.chunk_target >= 1,
             "cpd: --chunk must be >= 1 (claims per thread)");
  {
    const std::string k = cli.get_string("kernels");
    SPTD_CHECK(k == "fixed" || k == "generic",
               "cpd: --kernels must be fixed|generic");
    opts.use_fixed_kernels = (k == "fixed");
  }
  opts.nonnegative = cli.get_bool("nonneg");
  opts.precision = parse_precision(cli.get_string("precision"));
  opts.backend = parse_parallel_backend(cli.get_string("backend"));
  opts.resilience = resilience_from_flags(cli);
  apply_impl_variant(find_impl_variant(cli.get_string("impl")), opts);

  const std::uint64_t steals_before = work_steal_count();
  const CpalsResult r = cp_als(t, opts);
  std::printf("fit %.6f after %d iterations\n", r.fit_history.back(),
              r.iterations);
  for (int i = 0; i < kNumRoutines; ++i) {
    const auto routine = static_cast<Routine>(i);
    std::printf("  %-9s %8.4f s\n", routine_name(routine),
                r.timers.seconds(routine));
  }
  if (opts.schedule == SchedulePolicy::kWorkStealing) {
    std::printf("  steals    %8llu\n",
                static_cast<unsigned long long>(work_steal_count() -
                                                steals_before));
  }
  std::printf("  csf %s, value stream %s per MTTKRP launch (%s)\n",
              format_bytes(r.csf_bytes).c_str(),
              format_bytes(r.value_bytes).c_str(),
              precision_name(opts.precision));
  if (const std::string rs = resilience_summary(r.resilience);
      !rs.empty()) {
    std::printf("  %s\n", rs.c_str());
  }
  if (const std::string out = cli.get_string("output"); !out.empty()) {
    write_model_file(r.model, out);
    std::printf("model written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_tucker(int argc, const char* const* argv) {
  Options cli("sptd tucker", "Tucker decomposition (HOOI)");
  cli.add("core", "8x8x8", "core dimensions, e.g. 8x8x8");
  cli.add("iters", "50", "max iterations");
  cli.add("tolerance", "1e-5", "stopping tolerance");
  cli.add("threads", "0", "threads (0 = all)");
  cli.add("csf-layout", "compressed",
          "CSF index widths: compressed (narrowest per level) | wide");
  cli.add("schedule", "weighted",
          "slice scheduling policy static|weighted|dynamic|workstealing");
  cli.add("precision", "f64",
          "value-stream precision: f64 | f32 | mixed (fp32 streams, "
          "fp64 accumulation)");
  cli.add("seed", "17", "init seed");
  cli.add("backend", parallel_backend_name(default_parallel_backend()),
          "parallel backend: omp | pool (persistent std::thread "
          "workers; composes across concurrent runs)");
  add_resilience_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "tucker: need a tensor file");
  const SparseTensor t = load(cli.positional().front());

  TuckerOptions opts;
  {
    const std::string s = cli.get_string("core");
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t x = s.find('x', pos);
      if (x == std::string::npos) x = s.size();
      opts.core_dims.push_back(
          static_cast<idx_t>(std::stoul(s.substr(pos, x - pos))));
      pos = x + 1;
    }
  }
  opts.max_iterations = static_cast<int>(cli.get_int("iters"));
  opts.tolerance = cli.get_double("tolerance");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opts.nthreads = static_cast<int>(cli.get_int("threads"));
  if (opts.nthreads <= 0) opts.nthreads = hardware_threads();
  opts.csf_layout = parse_csf_layout(cli.get_string("csf-layout"));
  opts.schedule = parse_schedule_policy(cli.get_string("schedule"));
  opts.precision = parse_precision(cli.get_string("precision"));
  opts.backend = parse_parallel_backend(cli.get_string("backend"));
  opts.resilience = resilience_from_flags(cli);

  const TuckerResult r = tucker_hooi(t, opts);
  std::printf("fit %.6f after %d iterations (core %s)\n",
              r.fit_history.back(), r.iterations,
              cli.get_string("core").c_str());
  if (const std::string rs = resilience_summary(r.resilience);
      !rs.empty()) {
    std::printf("  %s\n", rs.c_str());
  }
  return 0;
}

int cmd_complete(int argc, const char* const* argv) {
  Options cli("sptd complete", "tensor completion (missing values)");
  cli.add("alg", "als", "solver: als|sgd|ccd");
  cli.add("rank", "10", "model rank");
  cli.add("iters", "30", "max iterations");
  cli.add("holdout", "0.2", "fraction held out for validation");
  cli.add("reg", "1e-2", "regularization");
  cli.add("lr", "0.02", "SGD learning rate");
  cli.add("decay", "0.01",
          "SGD learning-rate decay: lr / (1 + decay * epoch)");
  cli.add("threads", "0", "threads (0 = all)");
  cli.add("schedule", "weighted",
          "slice scheduling policy static|weighted|dynamic|workstealing");
  cli.add("chunk", "16",
          "dynamic/workstealing chunk target (claims per thread)");
  cli.add("kernels", "fixed",
          "inner-loop variant: fixed (rank-specialized SIMD) | generic");
  cli.add("precision", "f64",
          "value-stream precision: f64 | f32 | mixed (fp32 value reads, "
          "fp64 updates)");
  cli.add("seed", "23", "seed");
  cli.add("backend", parallel_backend_name(default_parallel_backend()),
          "parallel backend: omp | pool (persistent std::thread "
          "workers; composes across concurrent runs)");
  add_resilience_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(!cli.positional().empty(), "complete: need a tensor file");
  const SparseTensor t = load(cli.positional().front());
  const auto [train, test] = split_train_test(
      t, cli.get_double("holdout"),
      static_cast<std::uint64_t>(cli.get_int("seed")));

  CompletionOptions opts;
  opts.algorithm = parse_completion_algorithm(cli.get_string("alg"));
  opts.rank = static_cast<idx_t>(cli.get_int("rank"));
  opts.max_iterations = static_cast<int>(cli.get_int("iters"));
  opts.regularization = cli.get_double("reg");
  opts.learn_rate = cli.get_double("lr");
  opts.decay = cli.get_double("decay");
  opts.nthreads = static_cast<int>(cli.get_int("threads"));
  if (opts.nthreads <= 0) opts.nthreads = hardware_threads();
  opts.schedule = parse_schedule_policy(cli.get_string("schedule"));
  opts.chunk_target = static_cast<int>(cli.get_int("chunk"));
  SPTD_CHECK(opts.chunk_target >= 1,
             "complete: --chunk must be >= 1 (claims per thread)");
  {
    const std::string k = cli.get_string("kernels");
    SPTD_CHECK(k == "fixed" || k == "generic",
               "complete: --kernels must be fixed|generic");
    opts.use_fixed_kernels = (k == "fixed");
  }
  opts.precision = parse_precision(cli.get_string("precision"));
  opts.backend = parse_parallel_backend(cli.get_string("backend"));
  opts.resilience = resilience_from_flags(cli);
  const std::uint64_t steals_before = work_steal_count();
  const CompletionResult r = complete_tensor(train, &test, opts);
  if (r.val_rmse.empty()) {
    // The slice-aware split returns every entry of a fully-held-out slice
    // to the train side; a tensor of single-entry slices therefore ends
    // up with an empty holdout at ANY fraction.
    std::printf("%s: train RMSE %.4f after %d iterations (holdout empty "
                "after the slice-aware split; no validation)\n",
                completion_algorithm_name(opts.algorithm),
                r.train_rmse.back(), r.iterations);
  } else {
    std::printf("%s: train RMSE %.4f, holdout RMSE %.4f after %d "
                "iterations (best model from iteration %d)\n",
                completion_algorithm_name(opts.algorithm),
                r.train_rmse.back(), r.val_rmse.back(), r.iterations,
                r.best_iteration);
  }
  if (opts.schedule == SchedulePolicy::kWorkStealing) {
    std::printf("  steals    %8llu\n",
                static_cast<unsigned long long>(work_steal_count() -
                                                steals_before));
  }
  if (const std::string rs = resilience_summary(r.resilience);
      !rs.empty()) {
    std::printf("  %s\n", rs.c_str());
  }
  return 0;
}

int cmd_reorder(int argc, const char* const* argv) {
  Options cli("sptd reorder", "relabel tensor slices");
  cli.add("policy", "frequency", "random|frequency");
  cli.add("seed", "42", "seed for the random policy");
  if (!cli.parse(argc, argv)) return 0;
  SPTD_CHECK(cli.positional().size() == 2,
             "reorder: need <input> <output>");
  SparseTensor t = load(cli.positional()[0]);
  const std::string policy = cli.get_string("policy");
  if (policy == "random") {
    shuffle_all_modes(t, static_cast<std::uint64_t>(cli.get_int("seed")));
  } else if (policy == "frequency") {
    std::vector<std::vector<idx_t>> maps;
    for (int m = 0; m < t.order(); ++m) {
      maps.push_back(frequency_order(t, m));
    }
    relabel(t, maps);
  } else {
    throw Error("reorder: unknown policy '" + policy + "'");
  }
  store(t, cli.positional()[1]);
  std::printf("reordered (%s) -> %s\n", policy.c_str(),
              cli.positional()[1].c_str());
  return 0;
}

void usage() {
  std::fputs(
      "usage: sptd <command> [options]\n"
      "commands:\n"
      "  stats     print tensor statistics\n"
      "  validate  check a tensor file for structural problems\n"
      "  convert   convert between .tns and .bin\n"
      "  generate  synthesize a Table I preset tensor\n"
      "  cpd       CP-ALS decomposition\n"
      "  tucker    Tucker decomposition (HOOI)\n"
      "  complete  tensor completion (als|sgd|ccd) with a validation "
      "holdout\n"
      "  reorder   relabel tensor slices (random | frequency)\n"
      "each command accepts --help\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so each handler sees its own program name + options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (cmd == "stats") return cmd_stats(sub_argc, sub_argv);
    if (cmd == "validate") return cmd_validate(sub_argc, sub_argv);
    if (cmd == "convert") return cmd_convert(sub_argc, sub_argv);
    if (cmd == "generate") return cmd_generate(sub_argc, sub_argv);
    if (cmd == "cpd") return cmd_cpd(sub_argc, sub_argv);
    if (cmd == "tucker") return cmd_tucker(sub_argc, sub_argv);
    if (cmd == "complete") return cmd_complete(sub_argc, sub_argv);
    if (cmd == "reorder") return cmd_reorder(sub_argc, sub_argv);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      usage();
      return 0;
    }
    std::fprintf(stderr, "sptd: unknown command '%s'\n", cmd.c_str());
    usage();
    return 1;
  } catch (const sptd::Error& e) {
    std::fprintf(stderr, "sptd %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
