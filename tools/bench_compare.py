#!/usr/bin/env python3
"""Compare two bench --json files and fail on regressions.

Every bench harness appends one JSON object per measurement (JSON Lines)
when run with --json. This tool pairs records between a baseline file and
a candidate file on their identity fields (everything except the measured
seconds) and exits nonzero when any shared metric regressed by more than
the threshold.

Usage:
    tools/bench_compare.py baseline.json candidate.json [--threshold 0.25]
        [--metrics seconds,total_seconds,MTTKRP] [--require-pairs]

Records present in only one file are reported but are not failures unless
--require-pairs is given (machines differ; baselines age). The default
threshold is generous (25%) because bench boxes are noisy; CI smoke runs
care about order-of-magnitude regressions, not jitter.
"""

import argparse
import json
import sys

# Fields that are measurements (candidate/baseline ratios are checked),
# not identity. Everything else, minus the counters below, identifies the
# measurement. The completion RMSE fields are quality metrics: they are
# deterministic at fixed seed/threads, so a blowup past the threshold
# flags a solver regression the same way a timing blowup flags a perf
# one. The `alg` field a completion record carries is NOT listed here, so
# it stays part of record identity and solvers gate independently.
# csf_bytes is the CSF memory footprint (deterministic at fixed
# preset/scale/layout): gated lower-is-better exactly like a timing, so a
# change that silently re-widens the compressed index streams fails CI.
# The `csf_layout` identity field keeps compressed and wide records
# paired separately, and the `precision` identity field does the same for
# the value-stream precision (f64/f32/mixed): value_bytes and
# fit_gap_vs_f64 are then plain lower-is-better metrics within each
# precision, so re-widening the fp32 value stream or drifting further
# from the f64 fit both fail CI.
DEFAULT_METRICS = [
    "seconds",
    "total_seconds",
    "MTTKRP",
    "INVERSE",
    "MAT A^TA",
    "MAT NORM",
    "CPD FIT",
    "SORT",
    "train_rmse",
    "val_rmse",
    "csf_bytes",
    "value_bytes",
    "fit_gap_vs_f64",
    # Phase timings of the TTMc ablation (COO walk vs CSF walk) and the
    # deterministic halo volume of the dist-grid ablation. These are
    # measurements: leaving them unregistered would silently fold them
    # into record identity, where a wall-clock timing never matches its
    # baseline and the records pair with nothing.
    "coo_seconds",
    "csf_seconds",
    "comm_bytes",
    # Bytes the shm/mpi transports physically moved through their rings
    # (zero under sim, deterministic for a clean run — replay after an
    # injected kill adds to it, but bench runs never inject).
    "comm_bytes_measured",
]

# Higher-is-better quality metrics, gated on their deficit from the ideal
# value (1.0): the ratio check runs on (1 - fit), so a fit that moves
# from 0.998 to 0.990 is a 5x residual blowup and fails, while a fit
# improvement can never read as a regression.
DEFAULT_DEFICIT_METRICS = [
    "fit",
]

# Run-varying counters: excluded from identity (two runs of the same
# configuration report different values) but not ratio-checked either —
# a steal count is diagnostic, not a regression signal, and completion
# iteration counts may legitimately shift when a solver changes. The
# resilience counters ride here too: retries/rollbacks are recovery
# events, and checkpoint_bytes/checkpoint_time are wall-clock-noisy costs
# that ci.sh gates directly (<= 5% of total_seconds on the fig5 smoke)
# instead of ratio-checking against an aging baseline. checkpoint_every,
# by contrast, is identity: checkpointed and plain runs pair separately.
DEFAULT_COUNTERS = [
    "steals",
    "iterations",
    "best_iteration",
    "retries",
    "rollbacks",
    "checkpoint_bytes",
    "checkpoint_time",
    # Wall seconds inside transport collectives: diagnostic, noisy.
    "comm_seconds_measured",
]

# Identity fields: everything a bench may emit that is neither a metric
# nor a counter. This list changes nothing about how records pair — the
# identity key is still "every field not excluded above" — it exists so
# the pairing contract is EXPLICIT: tools/sptd_lint.py (rule
# bench-field-registry) fails CI when a bench emits a field that appears
# in none of the four lists, which is how an unregistered measurement
# would otherwise silently become identity and never pair (see
# coo_seconds above for the failure mode). Adding a bench field means
# deciding, here, whether it identifies the measurement or is one.
KNOWN_IDENTITY_FIELDS = [
    "alg",
    "backend",
    "bench",
    "checkpoint_every",
    "chunk",
    "config",
    "core",
    "csf",
    "csf_layout",
    "grid",
    "impl",
    "kernel_width",
    "kernels",
    "lock",
    "precision",
    "preset",
    "rank",
    "reorder",
    "row_access",
    "scale",
    "schedule",
    "strategies",
    "threads",
    "tile_policy",
    "transport",
    "zipf",
]


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: bad JSON line: {e}")
    return records


def identity(record, excluded):
    # Values are stringified so the key is type-stable: mixed value types
    # for one field across records (an int next to a bool or a string)
    # must produce distinct-but-sortable keys, not a TypeError from
    # comparing unlike types inside sorted().
    return tuple(sorted(
        (k, f"{type(v).__name__}:{v}")
        for k, v in record.items() if k not in excluded))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline bench --json file")
    ap.add_argument("candidate", help="candidate bench --json file")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional slowdown (default 0.25)")
    ap.add_argument("--metrics", default=",".join(DEFAULT_METRICS),
                    help="comma-separated measurement fields")
    ap.add_argument("--deficit-metrics",
                    default=",".join(DEFAULT_DEFICIT_METRICS),
                    help="comma-separated higher-is-better quality fields "
                         "gated on their deficit from 1.0")
    ap.add_argument("--counters", default=",".join(DEFAULT_COUNTERS),
                    help="comma-separated run-varying counter fields "
                         "(excluded from identity, never ratio-checked)")
    ap.add_argument("--min-seconds", type=float, default=1e-4,
                    help="noise floor: skip ratio checks when both sides "
                         "of a timing are below this (default 1e-4 — "
                         "scheduler jitter alone is tens of microseconds, "
                         "so ratios of such timings are meaningless)")
    ap.add_argument("--require-pairs", action="store_true",
                    help="fail if any record lacks a counterpart")
    args = ap.parse_args()

    metrics = [m for m in args.metrics.split(",") if m]
    deficits = [m for m in args.deficit_metrics.split(",") if m]
    counters = [c for c in args.counters.split(",") if c]
    excluded = set(metrics) | set(deficits) | set(counters)
    base = {}
    for rec in load_records(args.baseline):
        base.setdefault(identity(rec, excluded), []).append(rec)

    regressions = []
    unmatched = 0
    compared = 0
    for rec in load_records(args.candidate):
        key = identity(rec, excluded)
        if not base.get(key):
            unmatched += 1
            continue
        ref = base[key].pop(0)
        label = " ".join(f"{k}={v.split(':', 1)[1]}" for k, v in key
                         if k in ("bench", "impl", "alg", "threads",
                                  "row_access", "kernels", "kernel_width",
                                  "schedule", "precision"))
        for m in metrics:
            if m not in rec or m not in ref:
                continue
            compared += 1
            old, new = float(ref[m]), float(rec[m])
            if old <= 0.0:
                continue
            if max(old, new) < args.min_seconds:
                continue
            ratio = new / old
            if ratio > 1.0 + args.threshold:
                regressions.append(
                    f"{label}: {m} {old:.6f}s -> {new:.6f}s "
                    f"({ratio:.2f}x, threshold {1.0 + args.threshold:.2f}x)")
        for m in deficits:
            if m not in rec or m not in ref:
                continue
            compared += 1
            old, new = 1.0 - float(ref[m]), 1.0 - float(rec[m])
            if old <= 0.0:
                continue
            ratio = new / old
            if ratio > 1.0 + args.threshold:
                regressions.append(
                    f"{label}: 1-{m} {old:.6f} -> {new:.6f} "
                    f"({ratio:.2f}x, threshold {1.0 + args.threshold:.2f}x)")

    leftover = sum(len(v) for v in base.values())
    print(f"bench_compare: {compared} metric(s) compared, "
          f"{len(regressions)} regression(s), "
          f"{unmatched} candidate / {leftover} baseline record(s) unpaired")
    for r in regressions:
        print(f"  REGRESSION {r}")

    if regressions:
        return 1
    if args.require_pairs and (unmatched or leftover):
        print("bench_compare: --require-pairs set and records were unpaired")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
