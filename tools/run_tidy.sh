#!/usr/bin/env bash
# clang-tidy gate: runs the curated .clang-tidy profile over every
# library translation unit and fails on any finding (the profile sets
# WarningsAsErrors: '*').
#
# Usage:
#   tools/run_tidy.sh [build-dir]        # default build dir: build/
#
# Environment:
#   SPTD_TIDY_REQUIRE=1   fail (exit 2) when no clang-tidy binary is
#                         installed instead of skipping. CI leaves this
#                         unset so boxes without LLVM (like the gcc-only
#                         container this repo usually builds in) skip
#                         the job loudly but green; a box that HAS
#                         clang-tidy gates for real.
#
# The compile database comes from CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is always ON, see CMakeLists.txt); if the build dir has not been
# configured yet this script configures it.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# Accept a plain `clang-tidy` or any versioned `clang-tidy-NN`, newest
# first, so distro-suffixed installs work without symlinks.
TIDY=""
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY=clang-tidy
else
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$v" >/dev/null 2>&1; then
      TIDY="clang-tidy-$v"
      break
    fi
  done
fi

if [ -z "$TIDY" ]; then
  if [ "${SPTD_TIDY_REQUIRE:-0}" = "1" ]; then
    echo "run_tidy: no clang-tidy binary found and SPTD_TIDY_REQUIRE=1" >&2
    exit 2
  fi
  echo "run_tidy: SKIPPED — no clang-tidy binary on this machine" \
       "(install clang-tidy or set PATH; set SPTD_TIDY_REQUIRE=1 to" \
       "turn this skip into a failure)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy: configuring $BUILD_DIR for compile_commands.json"
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

# The library TUs are the gated surface: they hold every kernel, lock
# and schedule. Bench/test mains ride on the same headers (caught via
# HeaderFilterRegex when included from src TUs) without making the gate
# hostage to gtest/benchmark macro expansions.
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)

echo "run_tidy: $TIDY over ${#SOURCES[@]} translation units" \
     "(profile: .clang-tidy, findings are errors)"
STATUS=0
for tu in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" --quiet "$tu"; then
    STATUS=1
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "run_tidy: FAILED — findings above must be fixed or the check" \
       "disabled in .clang-tidy with a written reason" >&2
  exit 1
fi
echo "run_tidy: clean"
