# Minimal registry stub for the sptd_lint self-test: just the four
# lists the bench-field-registry rule parses. The fixture bench emits
# "bench", "seconds", one unregistered field, and one allow-marked one.
DEFAULT_METRICS = [
    "seconds",
]

DEFAULT_DEFICIT_METRICS = [
    "fit",
]

DEFAULT_COUNTERS = [
    "steals",
]

KNOWN_IDENTITY_FIELDS = [
    "bench",
]
