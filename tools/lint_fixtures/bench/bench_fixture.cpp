// Seeded violation: a bench field absent from every bench_compare.py
// registry list. Never compiled.

void emit(JsonRecord& rec) {
  rec.field("bench", "fixture")                 // fine: registered identity
      .field("seconds", 1.0)                    // fine: registered metric
      .field("mystery_knob", 3);                // VIOLATION bench-field-registry
  // sptd-lint: allow(bench-field-registry) marker fixture, stays quiet
  rec.field("waived_unregistered_field", 1);
}
