// Seeded violations: raw wide accessors outside src/csf. Never compiled.

void walk_raw(const CsfTensor& csf) {
  const auto& ids = csf.fids(1);    // VIOLATION wide-accessor
  const auto* ptr = (&csf)->fptr(0);  // VIOLATION wide-accessor
  (void)ids;
  (void)ptr;
}

void walk_waived(const CsfTensor& csf) {
  // sptd-lint: allow(wide-accessor) test asserts the throw on narrow levels
  const auto& ids = csf.fids(1);
  (void)ids;
}
