// Seeded violations: unaligned value arrays in a hot directory. Raw
// fids()/fptr() calls below must NOT be reported — this file is inside
// src/csf, the layer that owns them. Never compiled.

#include <vector>

struct FixtureStore {
  std::vector<val_t> vals;        // VIOLATION unaligned-value-array
  std::vector<float> vals_f32;    // VIOLATION unaligned-value-array
  std::vector<int> counts;        // fine: not a value stream
  aligned_vector<val_t> aligned;  // fine: the required type
};

void owner_access(const CsfTensor& csf) {
  const auto& ids = csf.fids(0);  // fine: inside src/csf
  (void)ids;
}

void waived_scratch() {
  // sptd-lint: allow(unaligned-value-array) cold path, alignment irrelevant
  std::vector<val_t> tmp(8);
  (void)tmp;
}
