// Seeded violation: owning type-erased dispatch inside src/parallel —
// the regression the std-function-hot-path rule caught in
// ParallelContext::run, which routed cached-plan iterations through the
// allocating cold-path overload instead of TeamBodyRef. Never compiled.

#include <functional>
#include <thread>

namespace fixture {

struct Context {
  int nthreads = 4;

  // The buggy shape of ParallelContext::run: taking (and so
  // constructing) an owning wrapper per launch allocates on every
  // cached-plan iteration.
  void run(const std::function<void(int, int)>& body) const {  // VIOLATION std-function-hot-path
    body(0, nthreads);
  }

  // The sanctioned cold-path shape carries a marker, like team.hpp's.
  void run_cold(
      // sptd-lint: allow(std-function-hot-path) cold-path overload fixture
      const std::function<void(int, int)>& body) const {
    body(0, nthreads);
  }
};

// Raw thread construction is fine HERE: src/parallel is the one
// directory allowed to spawn threads (the pool backend lives here), so
// the omp-outside-parallel raw-thread pattern must not fire.
inline void backend_worker_ok() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace fixture
