// Seeded violations: OpenMP runtime use and type-erased dispatch in a
// kernel directory. Never compiled.

#include <functional>
#include <omp.h>

double hot_dispatch(const std::function<double(double)>& f) {  // VIOLATION std-function-hot-path
  double acc = 0.0;
  int n = omp_get_max_threads();  // VIOLATION omp-outside-parallel
#pragma omp parallel for reduction(+ : acc)  // VIOLATION omp-outside-parallel
  for (int i = 0; i < n; ++i) {
    acc += f(static_cast<double>(i));
  }
  return acc;
}

double simd_ok(const double* x, int n) {
  double acc = 0.0;
  // A pure vectorization hint is exempt: no runtime interaction.
#pragma omp simd reduction(+ : acc)
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

double waived(const double* x, int n) {
  double acc = 0.0;
  // sptd-lint: allow(omp-outside-parallel) fixture for the marker path
#pragma omp parallel for reduction(+ : acc)
  for (int i = 0; i < n; ++i) {
    acc += x[i];
  }
  return acc;
}

#include <thread>

void rogue_team(double* x, int n) {
  std::thread t([x, n] {  // VIOLATION omp-outside-parallel (raw thread)
    for (int i = 0; i < n; ++i) x[i] *= 2.0;
  });
  t.join();
}

void this_thread_ok() {
  // std::this_thread must NOT match the raw-thread pattern.
  std::this_thread::yield();
}

void waived_thread(double* x, int n) {
  // sptd-lint: allow(omp-outside-parallel) fixture for the marker path
  std::thread t([x, n] {
    for (int i = 0; i < n; ++i) x[i] += 1.0;
  });
  t.join();
}
